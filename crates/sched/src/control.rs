//! Cancellation, deadlines, and the liveness watchdog for the DAG
//! executors.
//!
//! A [`RunBudget`] bounds one executor run three ways, all cooperative
//! and all funneled through the executors' existing abort-broadcast
//! path, so an interrupted run **drains** — every worker observes the
//! abort at its next task boundary, parks are woken, and the run returns
//! a report instead of hanging:
//!
//! * **Cancellation** — a [`CancelToken`] shared with the caller (or a
//!   SIGINT handler). Checked at every task-acquisition boundary.
//! * **Deadline** — an absolute [`Instant`]; also checked at task
//!   boundaries, so enforcement latency is bounded by the longest single
//!   task.
//! * **Watchdog** — an opt-in monitor thread ([`WatchdogConfig`]) driven
//!   by per-worker heartbeat epochs (bumped on task start, steal-scan,
//!   and park transitions). When no heartbeat and no retirement happens
//!   for a full stall window while tasks remain, the monitor captures a
//!   [`StallReport`] (per-worker state, last task, queue depths) and
//!   aborts the run — turning a lost-wakeup-class hang into a
//!   structured, diagnosable failure. The heartbeats are always compiled
//!   in (a few relaxed atomic stores per task); only the monitor thread
//!   is opt-in.
//!
//! The interrupt reason lands in [`crate::ExecReport::interrupt`]; the
//! numeric driver maps it onto `LuError::{Cancelled, DeadlineExceeded,
//! Stalled}` with progress counters attached.

use crate::sync::{
    AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Condvar, Countdown, Mutex, Ordering,
};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel for a [`CancelToken`] whose checkpoint countdown is disarmed.
const UNARMED: usize = usize::MAX;

/// A shareable cancellation handle.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// state. [`CancelToken::cancel`] is sticky: once cancelled, a token
/// stays cancelled. Workers poll it through [`CancelToken::checkpoint`]
/// at task boundaries; tests can arm a deterministic trip with
/// [`CancelToken::cancel_after_checkpoints`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    countdown: AtomicUsize,
    /// Ancestor chain for derived tokens: [`CancelToken::is_cancelled`]
    /// consults every ancestor, so cancelling a parent cancels the whole
    /// subtree, while cancelling a child leaves the parent untouched.
    parent: Option<Arc<TokenInner>>,
}

fn chain_cancelled(inner: &TokenInner) -> bool {
    inner.cancelled.load(Ordering::Acquire) || inner.parent.as_deref().is_some_and(chain_cancelled)
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                countdown: AtomicUsize::new(UNARMED),
                parent: None,
            }),
        }
    }

    /// A derived token scoped under this one: cancelling the parent (or
    /// any ancestor) cancels the child, while cancelling the child leaves
    /// the parent untouched.
    ///
    /// This is the right shape for handing a long-lived cancellation
    /// handle (a serve connection, a SIGINT watcher) to an executor run:
    /// the executors' abort-drain path cancels the run's own token to
    /// release parked workers (see [`WatchdogConfig`] and the stall
    /// containment), and a *contained* failure must not stick that
    /// cancellation onto the caller's handle.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                countdown: AtomicUsize::new(UNARMED),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Requests cancellation (sticky, idempotent, callable from any
    /// thread — e.g. a SIGINT handler's watcher).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested, on this token or any
    /// ancestor it was derived from.
    pub fn is_cancelled(&self) -> bool {
        chain_cancelled(&self.inner)
    }

    /// Arms the token to self-cancel at the `n`-th subsequent
    /// [`CancelToken::checkpoint`] call (immediately for `n == 0`) —
    /// the deterministic trip the cancellation tests inject.
    pub fn cancel_after_checkpoints(&self, n: usize) {
        assert_ne!(n, UNARMED, "countdown sentinel");
        self.inner.countdown.store(n, Ordering::Release);
    }

    /// Polls the token at a task boundary: returns `true` when the run
    /// should stop, decrementing the armed countdown (if any) as a side
    /// effect.
    pub fn checkpoint(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        match self
            .inner
            .countdown
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                if c == UNARMED || c == 0 {
                    None
                } else {
                    Some(c - 1)
                }
            }) {
            // This checkpoint consumed the last credit.
            Ok(1) => {
                self.cancel();
                true
            }
            Ok(_) => false,
            Err(c) if c == UNARMED => false,
            // Armed with zero credits (or raced to exhaustion).
            Err(_) => {
                self.cancel();
                true
            }
        }
    }
}

impl PartialEq for CancelToken {
    /// Identity equality: two tokens are equal when they share state.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for CancelToken {}

/// Configuration of the liveness watchdog monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How long the run may go without **any** global progress (worker
    /// heartbeat or task retirement) before the monitor declares a stall.
    /// Must exceed the longest single task: a task body that runs longer
    /// than the window without returning is indistinguishable from a
    /// stalled scheduler at this (task-boundary) heartbeat granularity.
    pub stall_window: Duration,
    /// Monitor poll period; `None` derives `stall_window / 4`, clamped
    /// to `[1 ms, 100 ms]`.
    pub poll_interval: Option<Duration>,
}

impl WatchdogConfig {
    /// A watchdog with the given stall window and the derived poll rate.
    pub fn new(stall_window: Duration) -> Self {
        WatchdogConfig {
            stall_window,
            poll_interval: None,
        }
    }

    /// The effective poll period.
    pub fn poll(&self) -> Duration {
        self.poll_interval.unwrap_or_else(|| {
            (self.stall_window / 4)
                .max(Duration::from_millis(1))
                .min(Duration::from_millis(100))
        })
    }
}

/// Everything that may bound one executor run. The default budget is
/// unbounded (no token, no deadline, no watchdog) and adds no overhead
/// beyond a dead branch per task boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunBudget {
    /// Absolute wall-clock deadline for the run.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation handle.
    pub token: Option<CancelToken>,
    /// Liveness watchdog (monitor thread spawned only when set).
    pub watchdog: Option<WatchdogConfig>,
}

impl RunBudget {
    /// An unbounded budget (the default).
    pub fn unbounded() -> Self {
        RunBudget::default()
    }

    /// Sets the deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the cancellation token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Arms the watchdog.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Whether any task-boundary check (token or deadline) is armed.
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some() || self.token.is_some()
    }
}

/// What a worker was last seen doing (stall reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Spawned, no heartbeat recorded yet.
    Starting,
    /// Inside a task runner.
    Running,
    /// Scanning for work (own pool or victim pools).
    Scanning,
    /// Parked on its sleep gate.
    Parked,
    /// Exited its work loop.
    Exited,
}

impl WorkerState {
    fn from_u8(v: u8) -> Self {
        match v {
            1 => WorkerState::Running,
            2 => WorkerState::Scanning,
            3 => WorkerState::Parked,
            4 => WorkerState::Exited,
            _ => WorkerState::Starting,
        }
    }
}

impl fmt::Display for WorkerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkerState::Starting => "starting",
            WorkerState::Running => "running",
            WorkerState::Scanning => "scanning",
            WorkerState::Parked => "parked",
            WorkerState::Exited => "exited",
        };
        f.write_str(s)
    }
}

/// One worker's liveness snapshot at the moment a stall was declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Worker index.
    pub worker: usize,
    /// Last observed state.
    pub state: WorkerState,
    /// Executor id of the last task the worker started, if any.
    pub last_task: Option<usize>,
    /// Heartbeat epoch (transitions since the run started).
    pub heartbeats: u64,
}

/// The watchdog's diagnosis of a stalled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// How long the run went without any global progress.
    pub stalled_for: Duration,
    /// Tasks not yet retired when the stall was declared.
    pub tasks_pending: usize,
    /// Per-worker liveness snapshots.
    pub workers: Vec<WorkerSnapshot>,
    /// Ready-pool depths (one per pool; pool count is `nthreads` for the
    /// per-worker executors, 1 for the shared FIFO queue).
    pub queue_depths: Vec<usize>,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "no scheduler progress for {} ms with {} task(s) pending; queue depths {:?}",
            self.stalled_for.as_millis(),
            self.tasks_pending,
            self.queue_depths
        )?;
        writeln!(
            f,
            "{:>6} {:>9} {:>9} {:>10}",
            "worker", "state", "last_task", "heartbeats"
        )?;
        for w in &self.workers {
            writeln!(
                f,
                "{:>6} {:>9} {:>9} {:>10}",
                w.worker,
                w.state.to_string(),
                w.last_task.map_or("-".to_string(), |t| t.to_string()),
                w.heartbeats
            )?;
        }
        Ok(())
    }
}

/// Why an executor run was interrupted before retiring every task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Interrupt {
    /// The run's [`CancelToken`] was cancelled.
    Cancelled {
        /// Tasks not yet retired at the moment the interrupt tripped.
        tasks_pending: usize,
    },
    /// The run's deadline passed.
    DeadlineExceeded {
        /// Tasks not yet retired at the moment the interrupt tripped.
        tasks_pending: usize,
    },
    /// The watchdog declared a stall.
    Stalled(StallReport),
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled { tasks_pending } => {
                write!(f, "run cancelled with {tasks_pending} task(s) pending")
            }
            Interrupt::DeadlineExceeded { tasks_pending } => {
                write!(f, "deadline exceeded with {tasks_pending} task(s) pending")
            }
            Interrupt::Stalled(r) => write!(f, "scheduler stall detected: {r}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Executor-side runtime (crate-internal).
// ---------------------------------------------------------------------------

const STATE_STARTING: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_SCANNING: u8 = 2;
const STATE_PARKED: u8 = 3;
const STATE_EXITED: u8 = 4;

/// One worker's liveness cell: heartbeat epoch + last observed state +
/// last started task. All accesses are relaxed — the watchdog only needs
/// eventual visibility, and the hot path must stay a handful of
/// uncontended stores per task.
#[derive(Debug)]
struct Heart {
    beats: AtomicU64,
    state: AtomicU8,
    last_task: AtomicUsize,
}

impl Heart {
    fn new() -> Self {
        Heart {
            beats: AtomicU64::new(0),
            state: AtomicU8::new(STATE_STARTING),
            last_task: AtomicUsize::new(usize::MAX),
        }
    }
}

/// Stop signal for the watchdog monitor thread.
#[derive(Debug)]
struct MonitorStop {
    lock: Mutex<bool>,
    cv: Condvar,
}

/// Shared run-control state for one executor run: the abort latch, the
/// unretired-task countdown, the first-interrupt slot, the per-worker
/// liveness cells, and the watchdog plumbing. Both executors thread one
/// `Supervisor` through their worker loops.
pub(crate) struct Supervisor<'b> {
    budget: &'b RunBudget,
    /// `true` when a token or deadline needs checking at task boundaries.
    armed: bool,
    pub(crate) abort: crate::sync::AbortFlag,
    pub(crate) remaining: Countdown,
    interrupted: Mutex<Option<Interrupt>>,
    hearts: Vec<Heart>,
    stop: MonitorStop,
}

impl<'b> Supervisor<'b> {
    pub(crate) fn new(n_tasks: usize, nthreads: usize, budget: &'b RunBudget) -> Self {
        Supervisor {
            budget,
            armed: budget.is_armed(),
            abort: crate::sync::AbortFlag::new(),
            remaining: Countdown::new(n_tasks),
            interrupted: Mutex::new(None),
            hearts: (0..nthreads).map(|_| Heart::new()).collect(),
            stop: MonitorStop {
                lock: Mutex::new(false),
                cv: Condvar::new(),
            },
        }
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.abort.is_set()
    }

    /// The task-boundary budget check. Returns `true` when the worker
    /// must stop acquiring work — because the run is already aborted, or
    /// because this very check tripped the token/deadline. `wake` is the
    /// executor's broadcast (all gates / all queues).
    pub(crate) fn check_budget<W: Fn()>(&self, wake: &W) -> bool {
        if self.abort.is_set() {
            return true;
        }
        // A finished run cannot be interrupted: without this, a token
        // cancelled between the last retirement and worker exit would
        // stamp a spurious interrupt onto a complete result.
        if !self.armed || self.remaining.is_done() {
            return false;
        }
        if let Some(t) = &self.budget.token {
            if t.checkpoint() {
                self.trip(
                    Interrupt::Cancelled {
                        tasks_pending: self.remaining.remaining(),
                    },
                    wake,
                );
                return true;
            }
        }
        if let Some(d) = self.budget.deadline {
            if Instant::now() >= d {
                self.trip(
                    Interrupt::DeadlineExceeded {
                        tasks_pending: self.remaining.remaining(),
                    },
                    wake,
                );
                return true;
            }
        }
        false
    }

    /// Records the interrupt (first one wins) and aborts the run: cancel
    /// the shared token (releases cooperative waiters inside task
    /// bodies), latch the abort, broadcast every gate, stop the monitor.
    /// The slot is written before the token/abort stores so a concurrent
    /// tripper cannot observe the abort and skip recording its reason.
    pub(crate) fn trip<W: Fn()>(&self, why: Interrupt, wake: &W) {
        {
            let mut slot = self.interrupted.lock();
            if slot.is_none() {
                *slot = Some(why);
            }
        }
        if let Some(t) = &self.budget.token {
            t.cancel();
        }
        self.abort.set();
        wake();
        self.stop_monitor();
    }

    /// The panic-containment abort: same drain path as [`Self::trip`]
    /// but records no interrupt — the panic itself is the reason and
    /// travels through [`crate::ExecReport::panic`].
    pub(crate) fn abort_for_panic<W: Fn()>(&self, wake: &W) {
        if let Some(t) = &self.budget.token {
            t.cancel();
        }
        self.abort.set();
        wake();
        self.stop_monitor();
    }

    /// Clean-shutdown hook for the retiring worker that took the last
    /// task: stop the monitor so the scope join does not wait out a poll.
    pub(crate) fn on_last_retire(&self) {
        self.stop_monitor();
    }

    // -- heartbeats (always compiled in; relaxed, uncontended) --

    pub(crate) fn beat_task(&self, w: usize, tid: usize) {
        let h = &self.hearts[w];
        h.beats.fetch_add(1, Ordering::Relaxed);
        h.last_task.store(tid, Ordering::Relaxed);
        h.state.store(STATE_RUNNING, Ordering::Relaxed);
    }

    pub(crate) fn beat_scan(&self, w: usize) {
        let h = &self.hearts[w];
        h.beats.fetch_add(1, Ordering::Relaxed);
        h.state.store(STATE_SCANNING, Ordering::Relaxed);
    }

    pub(crate) fn beat_park(&self, w: usize) {
        let h = &self.hearts[w];
        h.beats.fetch_add(1, Ordering::Relaxed);
        h.state.store(STATE_PARKED, Ordering::Relaxed);
    }

    pub(crate) fn beat_unpark(&self, w: usize) {
        let h = &self.hearts[w];
        h.beats.fetch_add(1, Ordering::Relaxed);
        h.state.store(STATE_SCANNING, Ordering::Relaxed);
    }

    pub(crate) fn mark_exited(&self, w: usize) {
        self.hearts[w].state.store(STATE_EXITED, Ordering::Relaxed);
    }

    // -- watchdog monitor --

    fn progress_signature(&self) -> (u64, usize) {
        let beats = self
            .hearts
            .iter()
            .fold(0u64, |s, h| s.wrapping_add(h.beats.load(Ordering::Relaxed)));
        (beats, self.remaining.remaining())
    }

    fn snapshot_workers(&self) -> Vec<WorkerSnapshot> {
        self.hearts
            .iter()
            .enumerate()
            .map(|(w, h)| {
                let last = h.last_task.load(Ordering::Relaxed);
                WorkerSnapshot {
                    worker: w,
                    state: WorkerState::from_u8(h.state.load(Ordering::Relaxed)),
                    last_task: (last != usize::MAX).then_some(last),
                    heartbeats: h.beats.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    pub(crate) fn stop_monitor(&self) {
        if self.budget.watchdog.is_none() {
            return;
        }
        *self.stop.lock.lock() = true;
        self.stop.cv.notify_all();
    }

    /// The watchdog monitor body, run on its own scoped thread when
    /// [`RunBudget::watchdog`] is set. Polls the progress signature; when
    /// it freezes for a full stall window while tasks remain, captures a
    /// [`StallReport`] and trips the run.
    pub(crate) fn monitor<W, D>(&self, cfg: WatchdogConfig, wake: &W, queue_depths: &D)
    where
        W: Fn(),
        D: Fn() -> Vec<usize>,
    {
        let poll = cfg.poll();
        let mut last_sig = self.progress_signature();
        let mut last_change = Instant::now();
        loop {
            {
                let mut stopped = self.stop.lock.lock();
                if *stopped {
                    return;
                }
                let _ = self.stop.cv.wait_for(&mut stopped, poll);
                if *stopped {
                    return;
                }
            }
            if self.abort.is_set() {
                return;
            }
            let sig = self.progress_signature();
            if sig != last_sig {
                last_sig = sig;
                last_change = Instant::now();
                continue;
            }
            let pending = self.remaining.remaining();
            if pending == 0 {
                return;
            }
            if last_change.elapsed() >= cfg.stall_window {
                let report = StallReport {
                    stalled_for: last_change.elapsed(),
                    tasks_pending: pending,
                    workers: self.snapshot_workers(),
                    queue_depths: queue_depths(),
                };
                self.trip(Interrupt::Stalled(report), wake);
                return;
            }
        }
    }

    /// Consumes the supervisor after the scope joins, yielding the
    /// recorded interrupt, if any.
    pub(crate) fn finish(self) -> Option<Interrupt> {
        self.interrupted.into_inner()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn token_cancel_is_sticky_and_shared() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
        assert!(t.checkpoint());
        assert_eq!(t, t2);
        assert_ne!(t, CancelToken::new());
    }

    #[test]
    fn child_cancellation_is_one_directional() {
        // Parent → child propagates (through a grandchild too)...
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
        assert!(child.checkpoint());

        // ...but a child cancelled by a contained abort (the executors'
        // drain path) must not poison its parent.
        let conn = CancelToken::new();
        let job = conn.child();
        job.cancel();
        assert!(job.is_cancelled());
        assert!(!conn.is_cancelled());
        // The next job derived from the same handle starts clean.
        assert!(!conn.child().is_cancelled());
    }

    #[test]
    fn checkpoint_countdown_trips_at_the_armed_index() {
        let t = CancelToken::new();
        t.cancel_after_checkpoints(3);
        assert!(!t.checkpoint());
        assert!(!t.checkpoint());
        assert!(t.checkpoint(), "third checkpoint consumes the last credit");
        assert!(t.is_cancelled());

        let zero = CancelToken::new();
        zero.cancel_after_checkpoints(0);
        assert!(zero.checkpoint(), "zero credits: first checkpoint trips");
    }

    #[test]
    fn unarmed_checkpoints_never_trip() {
        let t = CancelToken::new();
        for _ in 0..1000 {
            assert!(!t.checkpoint());
        }
        assert!(!t.is_cancelled());
    }

    #[test]
    fn watchdog_poll_derivation_clamps() {
        let w = WatchdogConfig::new(Duration::from_millis(2));
        assert_eq!(w.poll(), Duration::from_millis(1));
        let w = WatchdogConfig::new(Duration::from_secs(10));
        assert_eq!(w.poll(), Duration::from_millis(100));
        let w = WatchdogConfig {
            stall_window: Duration::from_secs(1),
            poll_interval: Some(Duration::from_millis(7)),
        };
        assert_eq!(w.poll(), Duration::from_millis(7));
    }

    #[test]
    fn supervisor_first_interrupt_wins() {
        let budget = RunBudget::unbounded().with_token(CancelToken::new());
        let sup = Supervisor::new(5, 2, &budget);
        sup.trip(Interrupt::Cancelled { tasks_pending: 5 }, &|| {});
        sup.trip(Interrupt::DeadlineExceeded { tasks_pending: 4 }, &|| {});
        assert!(sup.is_aborted());
        assert!(budget.token.as_ref().unwrap().is_cancelled());
        assert_eq!(
            sup.finish(),
            Some(Interrupt::Cancelled { tasks_pending: 5 })
        );
    }

    #[test]
    fn check_budget_is_inert_when_unarmed_or_done() {
        let unarmed = RunBudget::unbounded();
        let sup = Supervisor::new(3, 1, &unarmed);
        assert!(!sup.check_budget(&|| {}));

        // A cancelled token no longer trips once every task has retired.
        let token = CancelToken::new();
        let budget = RunBudget::unbounded().with_token(token.clone());
        let sup = Supervisor::new(1, 1, &budget);
        assert!(!sup.remaining.retire() || sup.remaining.is_done());
        token.cancel();
        assert!(!sup.check_budget(&|| {}));
        assert_eq!(sup.finish(), None);
    }

    #[test]
    fn expired_deadline_trips_deadline_exceeded() {
        let budget = RunBudget::unbounded().with_deadline(Instant::now() - Duration::from_secs(1));
        let sup = Supervisor::new(4, 1, &budget);
        assert!(sup.check_budget(&|| {}));
        assert_eq!(
            sup.finish(),
            Some(Interrupt::DeadlineExceeded { tasks_pending: 4 })
        );
    }

    #[test]
    fn stall_report_renders_every_worker() {
        let r = StallReport {
            stalled_for: Duration::from_millis(250),
            tasks_pending: 3,
            workers: vec![
                WorkerSnapshot {
                    worker: 0,
                    state: WorkerState::Parked,
                    last_task: Some(7),
                    heartbeats: 12,
                },
                WorkerSnapshot {
                    worker: 1,
                    state: WorkerState::Starting,
                    last_task: None,
                    heartbeats: 0,
                },
            ],
            queue_depths: vec![2, 0],
        };
        let s = r.to_string();
        assert!(s.contains("250 ms"));
        assert!(s.contains("parked"));
        assert!(s.contains("starting"));
        assert!(s.contains("[2, 0]"));
        let i = Interrupt::Stalled(r);
        assert!(i.to_string().contains("stall"));
    }
}
