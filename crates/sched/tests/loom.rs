//! Loom model checks for the executor's synchronization primitives
//! (`splu_sched::sync`) and the abort/cancel accounting invariant.
//!
//! Built only with `RUSTFLAGS="--cfg loom"` (the CI `loom` job):
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p splu-sched --test loom --release
//! ```
//!
//! Three invariants are checked, each over many explored schedules:
//!
//! 1. **No lost wakeup** — a producer pushing through the gate protocol
//!    (push under the pool lock, notify under the gate lock) can never
//!    strand a consumer that parked after seeing an empty pool.
//! 2. **Abort broadcast terminates all workers** — once the abort latch is
//!    set and every gate broadcast, every parked worker wakes, observes
//!    the latch under the gate lock, and exits.
//! 3. **`started == retired` under abort/cancel** — the abort path only
//!    blocks *new* task acquisitions, so every started task retires and
//!    the run's counters balance whether it was cancelled at any boundary
//!    or ran to completion.
//!
//! With the vendored loom stand-in the exploration is a bounded randomized
//! schedule sweep (see `vendor/loom`); against real loom the same source
//! model-checks exhaustively.

#![cfg(loom)]

use splu_sched::sync::{AbortFlag, Countdown, Gate, Park};
use splu_sched::{
    execute_dag_with_priorities_report_budgeted, CancelToken, RunBudget, TraceConfig,
};
use std::sync::{Arc, Mutex};

/// Invariant 1: the push-then-notify / check-then-park protocol never
/// loses a wakeup. Two consumers drain items a producer feeds one at a
/// time; if a notify could fall between a consumer's emptiness re-check
/// and its wait, a schedule would leave the consumer parked forever with
/// the countdown nonzero, and the join below would hang the model.
#[test]
fn no_lost_wakeup_between_push_and_park() {
    loom::model(|| {
        const ITEMS: usize = 3;
        let gate = Arc::new(Gate::new());
        let pool = Arc::new(Mutex::new(Vec::<usize>::new()));
        let left = Arc::new(Countdown::new(ITEMS));

        let producer = {
            let (gate, pool) = (Arc::clone(&gate), Arc::clone(&pool));
            loom::thread::spawn(move || {
                for i in 0..ITEMS {
                    pool.lock().unwrap().push(i);
                    gate.notify_one();
                }
            })
        };

        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let (gate, pool, left) = (Arc::clone(&gate), Arc::clone(&pool), Arc::clone(&left));
                loom::thread::spawn(move || loop {
                    // Pop into a local first: an `if let` on the guard
                    // temporary would hold the pool lock through the body,
                    // inverting lock order against `park_if`'s under-gate
                    // `has_work` pool probe.
                    let item = pool.lock().unwrap().pop();
                    if item.is_some() {
                        if left.retire() {
                            gate.notify_all();
                        }
                        continue;
                    }
                    match gate.park_if(|| left.is_done(), || !pool.lock().unwrap().is_empty()) {
                        Park::Exit => return,
                        Park::Retry | Park::Waited => continue,
                    }
                })
            })
            .collect();

        producer.join().unwrap();
        for c in consumers {
            c.join().unwrap();
        }
        assert!(left.is_done(), "every pushed item must be consumed");
    });
}

/// Invariant 2: the abort broadcast wakes and terminates every parked
/// worker. Both workers park with nothing to do; the aborter latches the
/// flag and broadcasts once. A schedule where the broadcast slipped past
/// a worker's under-lock re-check would hang the join.
#[test]
fn abort_broadcast_terminates_all_workers() {
    loom::model(|| {
        let gate = Arc::new(Gate::new());
        let abort = Arc::new(AbortFlag::new());

        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (gate, abort) = (Arc::clone(&gate), Arc::clone(&abort));
                loom::thread::spawn(move || loop {
                    match gate.park_if(|| abort.is_set(), || false) {
                        Park::Exit => return,
                        Park::Retry | Park::Waited => continue,
                    }
                })
            })
            .collect();

        let aborter = {
            let (gate, abort) = (Arc::clone(&gate), Arc::clone(&abort));
            loom::thread::spawn(move || {
                abort.set();
                gate.notify_all();
            })
        };

        aborter.join().unwrap();
        for w in workers {
            w.join().unwrap();
        }
        assert!(abort.is_set());
    });
}

/// Invariant 3: under cancellation at an arbitrary task boundary the
/// executor's accounting stays balanced — every *started* task retires
/// (the abort only blocks new acquisitions), so `tasks_started ==
/// tasks_retired` in every explored schedule, interrupted or not.
#[test]
fn started_equals_retired_under_cancel() {
    // A diamond: 0 → {1, 2} → 3.
    const N: usize = 4;
    const PREDS: [usize; N] = [0, 1, 1, 2];
    const SUCCS: [&[usize]; N] = [&[1, 2], &[3], &[3], &[]];
    const PRIO: [u64; N] = [3, 2, 2, 1];

    for trip_at in 0..=4usize {
        loom::model(move || {
            let token = CancelToken::new();
            token.cancel_after_checkpoints(trip_at);
            let budget = RunBudget::unbounded().with_token(token);
            let report = execute_dag_with_priorities_report_budgeted(
                N,
                &PREDS,
                |t: usize| SUCCS[t],
                &PRIO,
                2,
                1,
                |_| 0,
                |_| {},
                &TraceConfig::counters(),
                &budget,
            );
            assert!(report.panic.is_none());
            assert_eq!(
                report.stats.tasks_started, report.stats.tasks_retired,
                "every started task must retire (trip_at = {trip_at})"
            );
            if report.interrupt.is_none() {
                assert_eq!(
                    report.stats.tasks_retired, N as u64,
                    "clean run retires all"
                );
            }
        });
    }
}
