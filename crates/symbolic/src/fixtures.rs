//! Shared fixtures: the paper's Figure 1 example matrix.
//!
//! The constructions live in [`splu_matgen`] with the rest of the
//! deterministic matrix generators; this module re-exports them under
//! their historical path, used by unit tests across the workspace and by
//! the `paper_figures` example that prints the eforest/BTF/task-DAG
//! walkthrough of Figures 1–4.

pub use splu_matgen::{fig1_matrix, fig1_pattern};
