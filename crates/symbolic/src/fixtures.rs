//! Shared fixtures: the paper's Figure 1 example matrix.
//!
//! Used by unit tests across the workspace and by the `paper_figures`
//! example that prints the eforest/BTF/task-DAG walkthrough of Figures 1–4.

use splu_sparse::{CscMatrix, SparsityPattern};

/// The 7×7 unsymmetric example of the paper's Figure 1(a).
///
/// The figure in the retrieved paper text is partially garbled, so this
/// fixture is a faithful *small unsymmetric matrix with a zero-free
/// diagonal* exercising the same phenomena (a genuine forest with several
/// trees, fill-in, nontrivial postorder) rather than a digit-perfect copy.
pub fn fig1_pattern() -> SparsityPattern {
    let entries = vec![
        (0, 0),
        (0, 2),
        (1, 1),
        (1, 3),
        (2, 0),
        (2, 2),
        (2, 4),
        (3, 1),
        (3, 3),
        (3, 6),
        (4, 4),
        (4, 5),
        (5, 2),
        (5, 5),
        (5, 6),
        (6, 4),
        (6, 6),
    ];
    SparsityPattern::from_entries(7, 7, entries).unwrap()
}

/// The Figure 1 matrix with deterministic nonzero values (diagonally
/// dominant so that no pivoting is strictly required, yet unsymmetric).
pub fn fig1_matrix() -> CscMatrix {
    let p = fig1_pattern();
    let vals: Vec<f64> = p
        .entries()
        .map(|(i, j)| {
            if i == j {
                10.0 + i as f64
            } else {
                1.0 + ((3 * i + 5 * j) % 7) as f64 * 0.25
            }
        })
        .collect();
    CscMatrix::from_pattern_values(p, vals).expect("pattern and values align")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_unsymmetric_with_zero_free_diagonal() {
        let p = fig1_pattern();
        assert!(p.has_zero_free_diagonal());
        assert_ne!(p, p.transpose());
        let m = fig1_matrix();
        assert_eq!(m.nnz(), p.nnz());
        assert!(m.get(0, 0) >= 10.0);
    }
}
