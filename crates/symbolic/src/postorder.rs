//! Postordering the LU elimination forest (Section 3).
//!
//! The paper proves (Theorem 3) that symmetrically permuting `Ā` by a
//! postorder of its LU eforest leaves the static symbolic factorization
//! unchanged — only the labels move. The payoff is twofold:
//!
//! * supernodes become **contiguous** (columns of a supernode are siblings /
//!   chains in the forest, and a postorder lays each subtree out
//!   consecutively), enlarging the dense blocks handed to the BLAS-3
//!   kernels;
//! * the permuted matrix is **block upper triangular**: each tree of the
//!   forest becomes one diagonal block, and all coupling between trees lies
//!   strictly above the diagonal blocks (a consequence of the Theorem 1–2
//!   characterizations).
//!
//! The paper's `postorder(...)` pseudo-code performs adjacent interchanges;
//! like the authors ("for the ease of implementation, we preferred to code
//! the postorder depth-first search"), we implement the DFS directly.

use crate::eforest::EliminationForest;
use crate::static_fact::FilledLu;
use splu_sparse::Permutation;

/// Computes the postorder permutation of the filled structure's eforest.
///
/// Returns the symmetric permutation `P` (rows and columns) to apply to
/// `Ā` — and, by Theorem 3, equivalently to `A` before re-running the
/// static symbolic factorization. Trees are visited in ascending root
/// order and children in ascending order, so an already-postordered
/// structure yields the identity.
pub fn postorder_permutation(f: &FilledLu) -> Permutation {
    EliminationForest::from_filled(f).postorder()
}

/// A contiguous diagonal block of the block-upper-triangular decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtfBlock {
    /// First (new-label) column of the block.
    pub start: usize,
    /// One past the last column of the block.
    pub end: usize,
}

impl BtfBlock {
    /// Number of columns in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for an empty range (never produced by the decomposition).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Block-upper-triangular decomposition induced by a **postordered**
/// eforest: one diagonal block per tree, in label order.
///
/// # Panics
/// Panics when the forest is not postordered (run
/// [`postorder_permutation`] and relabel first).
pub fn block_triangular_form(forest: &EliminationForest) -> Vec<BtfBlock> {
    assert!(
        forest.is_postordered(),
        "block_triangular_form requires a postordered forest"
    );
    let sizes = forest.subtree_sizes();
    let mut blocks = Vec::new();
    let mut start = 0usize;
    for root in forest.roots() {
        // In a postorder with trees in ascending order, each tree occupies
        // [root + 1 - size, root].
        let lo = root + 1 - sizes[root];
        debug_assert_eq!(lo, start, "trees must tile the index range");
        blocks.push(BtfBlock {
            start: lo,
            end: root + 1,
        });
        start = root + 1;
    }
    debug_assert_eq!(start, forest.n());
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1_pattern;
    use crate::static_fact::static_symbolic_factorization;
    use splu_matgen::random_pattern;

    /// Theorem 3: permuting `A` by the postorder and re-running the static
    /// symbolic factorization gives exactly the permuted `Ā`.
    #[test]
    fn theorem3_static_factorization_invariance() {
        for (n, extra, seed) in [(7, 10, 1u64), (15, 25, 2), (25, 50, 3), (40, 60, 4)] {
            let p = random_pattern(n, extra, seed);
            let f = static_symbolic_factorization(&p).unwrap();
            let po = postorder_permutation(&f);
            let permuted_a = p.permuted(&po, &po);
            let f2 = static_symbolic_factorization(&permuted_a).unwrap();
            assert_eq!(
                f2.l,
                f.l.permuted(&po, &po),
                "L̄ changed under postorder (n={n}, seed={seed})"
            );
            assert_eq!(
                f2.u,
                f.u.permuted(&po, &po),
                "Ū changed under postorder (n={n}, seed={seed})"
            );
        }
    }

    #[test]
    fn theorem3_on_fig1() {
        let p = fig1_pattern();
        let f = static_symbolic_factorization(&p).unwrap();
        let po = postorder_permutation(&f);
        let f2 = static_symbolic_factorization(&p.permuted(&po, &po)).unwrap();
        assert_eq!(f2.filled_pattern(), f.filled_pattern().permuted(&po, &po));
    }

    /// The postorder preserves the zero-free diagonal (the paper reorders
    /// rows and columns symmetrically exactly for this reason).
    #[test]
    fn postorder_preserves_diagonal() {
        for seed in 0..6 {
            let p = random_pattern(20, 35, seed);
            let f = static_symbolic_factorization(&p).unwrap();
            let po = postorder_permutation(&f);
            assert!(p.permuted(&po, &po).has_zero_free_diagonal());
        }
    }

    /// After postordering, the filled matrix is block upper triangular with
    /// one block per tree: no entry below the diagonal blocks.
    #[test]
    fn permuted_filled_matrix_is_block_upper_triangular() {
        for seed in 0..8 {
            let p = random_pattern(22, 30, seed);
            let f = static_symbolic_factorization(&p).unwrap();
            let po = postorder_permutation(&f);
            let forest = EliminationForest::from_filled(&f).relabel(&po);
            let blocks = block_triangular_form(&forest);
            // Block id per column.
            let mut block_of = vec![0usize; forest.n()];
            for (b, blk) in blocks.iter().enumerate() {
                for j in blk.start..blk.end {
                    block_of[j] = b;
                }
            }
            let filled = f.filled_pattern().permuted(&po, &po);
            for (i, j) in filled.entries() {
                assert!(
                    block_of[i] <= block_of[j],
                    "entry ({i},{j}) below the block diagonal (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn blocks_tile_the_range_and_respect_roots() {
        let p = fig1_pattern();
        let f = static_symbolic_factorization(&p).unwrap();
        let po = postorder_permutation(&f);
        let forest = EliminationForest::from_filled(&f).relabel(&po);
        let blocks = block_triangular_form(&forest);
        assert!(!blocks.is_empty());
        assert_eq!(blocks[0].start, 0);
        assert_eq!(blocks.last().unwrap().end, 7);
        for w in blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert!(!w[0].is_empty());
        }
        let total: usize = blocks.iter().map(BtfBlock::len).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn postorder_of_postordered_is_identity() {
        let p = random_pattern(18, 30, 11);
        let f = static_symbolic_factorization(&p).unwrap();
        let po = postorder_permutation(&f);
        let f2 = static_symbolic_factorization(&p.permuted(&po, &po)).unwrap();
        let po2 = postorder_permutation(&f2);
        assert!(po2.is_identity(), "postorder must be idempotent");
    }

    #[test]
    #[should_panic(expected = "requires a postordered forest")]
    fn btf_rejects_unpostordered_forest() {
        // parent = [3, NONE, NONE, NONE]: node 0's parent is 3 while nodes
        // 1 and 2 are interleaved roots — not a postorder.
        let forest =
            EliminationForest::from_parent_vec(vec![3, usize::MAX, usize::MAX, usize::MAX]);
        let _ = block_triangular_form(&forest);
    }
}
