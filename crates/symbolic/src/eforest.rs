//! The LU elimination forest (Definition 1) and the extended forest
//! characterization of `L̄` and `Ū` (Section 2, Theorems 1–2).
//!
//! For the filled matrix `Ā = L̄ + Ū − I`:
//!
//! * `parent(j) = min{ r > j : ū_jr ≠ 0 }`, defined when `|L̄_{*j}| > 1`
//!   (column `j` has at least one off-diagonal entry in `L̄`);
//! * every row `i` of `L̄` is a **branch** of the forest: the parent-path
//!   from the row's first nonzero column up to `i` (the characterization of
//!   \[7\] the paper recalls);
//! * every column `j` of `Ū` is a union of **column subtrees**: by
//!   Theorems 1–2, the set `{ i : ū_ij ≠ 0 }` is closed under taking
//!   ancestors below `j`, so it is determined by its minimal elements
//!   ("leaves").
//!
//! [`ExtendedEforest`] stores exactly this compact information — one integer
//! per row plus the per-column leaf lists — and can reconstruct both factor
//! structures, realising the "compact storage scheme" the paper describes.

use crate::static_fact::FilledLu;
use splu_sparse::{Permutation, SparsityPattern};

/// Sentinel for "no parent" in the internal array.
const NONE: usize = usize::MAX;

/// The LU elimination forest of a filled structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationForest {
    parent: Vec<usize>,
    children: Vec<Vec<usize>>,
}

impl EliminationForest {
    /// Builds the forest from the filled structure per Definition 1.
    pub fn from_filled(f: &FilledLu) -> Self {
        let n = f.n();
        let mut parent = vec![NONE; n];
        for j in 0..n {
            if f.l_col(j).len() > 1 {
                // u_row(j) starts with the diagonal j; the parent is the
                // next entry if any.
                if let Some(&p) = f.u_row(j).get(1) {
                    parent[j] = p;
                }
            }
        }
        Self::from_parent_vec(parent)
    }

    /// Builds a forest from a raw parent array (`usize::MAX` = root).
    ///
    /// # Panics
    /// Panics unless every parent is `> child` (forests over elimination
    /// orders are always heterochronous).
    pub fn from_parent_vec(parent: Vec<usize>) -> Self {
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        for (j, &p) in parent.iter().enumerate() {
            if p != NONE {
                assert!(p > j && p < n, "parent({j}) = {p} must satisfy j < p < n");
                children[p].push(j);
            }
        }
        // Children are pushed in ascending j automatically.
        EliminationForest { parent, children }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `j`, or `None` for roots.
    pub fn parent(&self, j: usize) -> Option<usize> {
        match self.parent[j] {
            NONE => None,
            p => Some(p),
        }
    }

    /// Children of `j` in ascending order.
    pub fn children(&self, j: usize) -> &[usize] {
        &self.children[j]
    }

    /// All roots in ascending order.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.n()).filter(|&j| self.parent[j] == NONE).collect()
    }

    /// `true` when `anc` is an ancestor of `node` (strict) in the forest.
    pub fn is_ancestor(&self, anc: usize, node: usize) -> bool {
        let mut x = node;
        while let Some(p) = self.parent(x) {
            if p == anc {
                return true;
            }
            x = p;
        }
        false
    }

    /// Nodes of the subtree rooted at `root` (including `root`), ascending.
    pub fn subtree(&self, root: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend_from_slice(&self.children[x]);
        }
        out.sort_unstable();
        out
    }

    /// Root of the tree containing `node`.
    pub fn tree_root(&self, node: usize) -> usize {
        let mut x = node;
        while let Some(p) = self.parent(x) {
            x = p;
        }
        x
    }

    /// Number of nodes in each subtree.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut size = vec![1usize; self.n()];
        for j in 0..self.n() {
            if let Some(p) = self.parent(j) {
                // Children precede parents numerically, so a single ascending
                // pass accumulates correctly.
                size[p] += size[j];
            }
        }
        size
    }

    /// `true` when the labelling is already a postorder: every subtree
    /// occupies a contiguous label range ending at its root.
    pub fn is_postordered(&self) -> bool {
        let size = self.subtree_sizes();
        (0..self.n()).all(|j| {
            let lo = j + 1 - size[j];
            self.children(j).iter().all(|&c| c >= lo && c < j)
        })
    }

    /// Depth of each node (roots have depth 0).
    pub fn depths(&self) -> Vec<usize> {
        let n = self.n();
        let mut depth = vec![0usize; n];
        // Parents have larger indices, so walk downward.
        for j in (0..n).rev() {
            for &c in self.children(j) {
                depth[c] = depth[j] + 1;
            }
        }
        depth
    }

    /// Height of the forest (longest root-to-leaf path, in edges).
    pub fn height(&self) -> usize {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Postorder permutation: depth-first, trees in ascending root order,
    /// children in ascending order. `perm.old_of(new)` is the original node
    /// receiving the new label `new`.
    pub fn postorder(&self) -> Permutation {
        let mut order = Vec::with_capacity(self.n());
        // Iterative DFS with explicit child cursor.
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for root in self.roots() {
            stack.push((root, 0));
            while let Some(&(x, ci)) = stack.last() {
                if ci < self.children[x].len() {
                    stack.last_mut().expect("stack nonempty").1 += 1;
                    stack.push((self.children[x][ci], 0));
                } else {
                    order.push(x);
                    stack.pop();
                }
            }
        }
        Permutation::from_vec(order).expect("DFS visits every node once")
    }

    /// Postorder of the single tree rooted at `root` (children in ascending
    /// order) — the `root` segment of [`Self::postorder`].
    ///
    /// Trees of the forest are disjoint, so segments can be computed
    /// independently (on different workers); concatenating them in
    /// ascending root order reproduces the full postorder exactly, which is
    /// how the parallel front half stitches per-subtree DFS runs.
    ///
    /// # Panics
    /// Panics (debug) when `root` is not a root.
    pub fn postorder_segment(&self, root: usize) -> Vec<usize> {
        debug_assert!(self.parent[root] == NONE, "postorder_segment needs a root");
        let mut order = Vec::new();
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(x, ci)) = stack.last() {
            if ci < self.children[x].len() {
                stack.last_mut().expect("stack nonempty").1 += 1;
                stack.push((self.children[x][ci], 0));
            } else {
                order.push(x);
                stack.pop();
            }
        }
        order
    }

    /// Graphviz DOT rendering of the forest (edges point child → parent).
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=BT; node [shape=circle];");
        for j in 0..self.n() {
            match self.parent(j) {
                Some(p) => {
                    let _ = writeln!(out, "  {j} -> {p};");
                }
                None => {
                    let _ = writeln!(out, "  {j} [penwidth=2];");
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// The forest with nodes relabelled by `perm` (`perm.old_of(new) = old`).
    pub fn relabel(&self, perm: &Permutation) -> EliminationForest {
        let parent = (0..self.n())
            .map(|new| match self.parent(perm.old_of(new)) {
                Some(p) => perm.new_of(p),
                None => NONE,
            })
            .collect();
        EliminationForest::from_parent_vec(parent)
    }
}

/// The extended LU eforest: the forest plus the compact row/column
/// information of the paper's Figure 1(b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedEforest {
    forest: EliminationForest,
    /// Per row `i`: the first nonzero column of `L̄` row `i` — the start of
    /// the row branch ("italics at the left of each node").
    row_branch_start: Vec<usize>,
    /// Per column `j`: the minimal elements (leaves) of the column subtrees
    /// of `Ū` ("italics at the right of each node").
    col_subtree_leaves: Vec<Vec<usize>>,
}

impl ExtendedEforest {
    /// Builds the extended forest from a filled structure.
    pub fn new(f: &FilledLu) -> Self {
        let forest = EliminationForest::from_filled(f);
        let n = f.n();
        // Row branch starts: first nonzero column of each L̄ row. L̄ is
        // column-compressed; walk it once.
        let mut row_branch_start: Vec<usize> = (0..n).collect();
        let mut seen = vec![false; n];
        for j in 0..n {
            for &i in f.l_col(j) {
                if !seen[i] {
                    seen[i] = true;
                    row_branch_start[i] = j;
                }
            }
        }
        // Column subtree leaves: i ∈ struct(Ū_{*j}) is a leaf when no child
        // of i is also in the structure.
        let mut col_subtree_leaves = vec![Vec::new(); n];
        for j in 0..n {
            let col = f.u.col(j);
            for &i in col {
                let has_member_child = forest
                    .children(i)
                    .iter()
                    .any(|&c| col.binary_search(&c).is_ok());
                if !has_member_child {
                    col_subtree_leaves[j].push(i);
                }
            }
        }
        ExtendedEforest {
            forest,
            row_branch_start,
            col_subtree_leaves,
        }
    }

    /// The underlying forest.
    pub fn forest(&self) -> &EliminationForest {
        &self.forest
    }

    /// Start of the `L̄` row branch for row `i`.
    pub fn row_branch_start(&self, i: usize) -> usize {
        self.row_branch_start[i]
    }

    /// Leaves of the `Ū` column subtrees for column `j`.
    pub fn col_subtree_leaves(&self, j: usize) -> &[usize] {
        &self.col_subtree_leaves[j]
    }

    /// Reconstructs the `L̄` structure from the branches: row `i` is the
    /// parent path from `row_branch_start[i]` up to `i`.
    pub fn reconstruct_l(&self) -> SparsityPattern {
        let n = self.forest.n();
        let mut entries = Vec::new();
        for i in 0..n {
            let mut x = self.row_branch_start[i];
            loop {
                entries.push((i, x));
                if x == i {
                    break;
                }
                x = self
                    .forest
                    .parent(x)
                    .expect("branch must reach its own row index");
                debug_assert!(x <= i, "branch overshot its row");
            }
        }
        SparsityPattern::from_entries(n, n, entries).expect("branch reconstruction is valid")
    }

    /// Reconstructs the `Ū` structure from the column-subtree leaves:
    /// column `j` is the union of parent paths from each leaf, truncated at
    /// `j`.
    pub fn reconstruct_u(&self) -> SparsityPattern {
        let n = self.forest.n();
        let mut entries = Vec::new();
        for j in 0..n {
            for &leaf in &self.col_subtree_leaves[j] {
                let mut x = leaf;
                loop {
                    entries.push((x, j));
                    if x == j {
                        break;
                    }
                    match self.forest.parent(x) {
                        Some(p) if p <= j => x = p,
                        _ => break,
                    }
                }
            }
            entries.push((j, j));
        }
        SparsityPattern::from_entries(n, n, entries).expect("subtree reconstruction is valid")
    }

    /// Predicted number of entries in each `L̄` row, computed from the
    /// compact representation alone: a row is the branch from its start to
    /// itself, so its length is the depth difference plus one.
    ///
    /// This is the storage-prediction use of the compact scheme: exact
    /// factor sizes without materializing the structures.
    pub fn predicted_l_row_counts(&self) -> Vec<usize> {
        let depth = self.forest.depths();
        (0..self.forest.n())
            .map(|i| {
                let start = self.row_branch_start[i];
                // start is a descendant of i on one path: count edges.
                depth[start] - depth[i] + 1
            })
            .collect()
    }

    /// Predicted total `L̄` entries (diagonal included) from the forest
    /// alone.
    pub fn predicted_l_nnz(&self) -> usize {
        self.predicted_l_row_counts().iter().sum()
    }

    /// Memory footprint of the compact scheme in index words (one branch
    /// start per row + leaf lists + parent array), for the storage
    /// comparison in the benchmark harness.
    pub fn compact_words(&self) -> usize {
        self.forest.n() * 2 + self.col_subtree_leaves.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1_pattern;
    use crate::static_fact::static_symbolic_factorization;
    use splu_matgen::random_pattern;
    use splu_sparse::SparsityPattern;

    fn filled(p: &SparsityPattern) -> FilledLu {
        static_symbolic_factorization(p).unwrap()
    }

    #[test]
    fn definition_matches_bruteforce() {
        for seed in 0..6 {
            let p = random_pattern(15, 30, seed);
            let f = filled(&p);
            let forest = EliminationForest::from_filled(&f);
            for j in 0..15 {
                let expected = if f.l_col(j).len() > 1 {
                    (j + 1..15).find(|&r| f.u.contains(j, r))
                } else {
                    None
                };
                assert_eq!(forest.parent(j), expected, "node {j}, seed {seed}");
            }
        }
    }

    #[test]
    fn diagonal_matrix_is_all_roots() {
        let f = filled(&SparsityPattern::identity(4));
        let forest = EliminationForest::from_filled(&f);
        assert_eq!(forest.roots(), vec![0, 1, 2, 3]);
        assert_eq!(forest.height(), 0);
        assert!(forest.is_postordered());
    }

    #[test]
    fn theorem1_ancestor_closure_of_u_columns() {
        // Theorem 1: ū_ij ≠ 0 implies ū_kj ≠ 0 for every ancestor k of i
        // with k < j.
        for seed in 0..8 {
            let p = random_pattern(18, 40, seed);
            let f = filled(&p);
            let forest = EliminationForest::from_filled(&f);
            for j in 0..18 {
                for &i in f.u.col(j) {
                    let mut x = i;
                    while let Some(k) = forest.parent(x) {
                        if k >= j {
                            break;
                        }
                        assert!(
                            f.u.contains(k, j),
                            "Theorem 1 violated: ū({i},{j}) set but ū({k},{j}) clear (seed {seed})"
                        );
                        x = k;
                    }
                }
            }
        }
    }

    #[test]
    fn theorem2_membership_of_u_columns() {
        // Theorem 2: ū_ij ≠ 0 implies i ∈ T[j], or i ∈ T[k] for a root k < j.
        for seed in 0..8 {
            let p = random_pattern(18, 40, seed);
            let f = filled(&p);
            let forest = EliminationForest::from_filled(&f);
            for j in 0..18 {
                for &i in f.u.col(j) {
                    if i == j {
                        continue;
                    }
                    let root = forest.tree_root(i);
                    let in_tj = root == j || forest.is_ancestor(j, i) || i == j;
                    let in_left_tree = forest.parent(root).is_none() && root < j;
                    assert!(
                        in_tj || in_left_tree || root >= j && forest.is_ancestor(j, i),
                        "Theorem 2 violated at ū({i},{j}), seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn l_rows_are_branches() {
        // The [7] characterization: L̄ row i = parent path from its first
        // nonzero to i.
        for seed in 0..8 {
            let p = random_pattern(18, 40, seed);
            let f = filled(&p);
            let ext = ExtendedEforest::new(&f);
            assert_eq!(
                ext.reconstruct_l(),
                f.l,
                "branch reconstruction mismatch, seed {seed}"
            );
        }
    }

    #[test]
    fn u_columns_reconstruct_from_leaves() {
        for seed in 0..8 {
            let p = random_pattern(18, 40, seed);
            let f = filled(&p);
            let ext = ExtendedEforest::new(&f);
            assert_eq!(
                ext.reconstruct_u(),
                f.u,
                "subtree reconstruction mismatch, seed {seed}"
            );
        }
    }

    #[test]
    fn predicted_row_counts_match_actual_structure() {
        for seed in 0..8 {
            let p = random_pattern(20, 45, seed);
            let f = filled(&p);
            let ext = ExtendedEforest::new(&f);
            let predicted = ext.predicted_l_row_counts();
            // Actual L̄ row lengths via the transpose of the column pattern.
            let lt = f.l.transpose();
            for i in 0..20 {
                assert_eq!(
                    predicted[i],
                    lt.col(i).len(),
                    "row {i} count mismatch (seed {seed})"
                );
            }
            assert_eq!(ext.predicted_l_nnz(), f.l.nnz(), "total (seed {seed})");
        }
    }

    #[test]
    fn compact_storage_is_smaller_on_filled_problems() {
        let p = random_pattern(30, 120, 9);
        let f = filled(&p);
        let ext = ExtendedEforest::new(&f);
        // The compact scheme stores 2 words per node plus leaves; compare to
        // the raw index storage of L̄+Ū.
        assert!(ext.compact_words() < f.nnz_filled() + f.n());
    }

    #[test]
    fn postorder_is_valid_and_relabel_preserves_shape() {
        let p = fig1_pattern();
        let f = filled(&p);
        let forest = EliminationForest::from_filled(&f);
        let po = forest.postorder();
        let relabelled = forest.relabel(&po);
        assert!(relabelled.is_postordered());
        assert_eq!(relabelled.height(), forest.height());
        assert_eq!(relabelled.roots().len(), forest.roots().len());
    }

    #[test]
    fn subtree_and_ancestor_queries() {
        // Hand-built forest: parent = [2, 2, 4, 4, NONE, NONE]
        let forest = EliminationForest::from_parent_vec(vec![2, 2, 4, 4, usize::MAX, usize::MAX]);
        assert_eq!(forest.subtree(4), vec![0, 1, 2, 3, 4]);
        assert_eq!(forest.subtree(2), vec![0, 1, 2]);
        assert!(forest.is_ancestor(4, 0));
        assert!(!forest.is_ancestor(3, 0));
        assert_eq!(forest.tree_root(1), 4);
        assert_eq!(forest.tree_root(5), 5);
        assert_eq!(forest.children(4), &[2, 3]);
        assert_eq!(forest.depths(), vec![2, 2, 1, 1, 0, 0]);
        assert_eq!(forest.height(), 2);
        assert_eq!(forest.subtree_sizes(), vec![1, 1, 3, 1, 5, 1]);
        assert!(forest.is_postordered());
    }

    #[test]
    fn stitched_segments_reproduce_the_postorder() {
        for seed in 0..8 {
            let p = random_pattern(24, 50, seed);
            let f = filled(&p);
            let forest = EliminationForest::from_filled(&f);
            let mut stitched = Vec::new();
            for root in forest.roots() {
                stitched.extend(forest.postorder_segment(root));
            }
            assert_eq!(
                stitched,
                forest.postorder().as_slice().to_vec(),
                "segment stitching diverged (seed {seed})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must satisfy")]
    fn parent_must_exceed_child() {
        EliminationForest::from_parent_vec(vec![usize::MAX, 0]);
    }

    #[test]
    fn dot_export_lists_every_edge_and_root() {
        let forest = EliminationForest::from_parent_vec(vec![2, 2, usize::MAX, usize::MAX]);
        let dot = forest.to_dot("t");
        assert!(dot.starts_with("digraph t {"));
        assert!(dot.contains("0 -> 2;"));
        assert!(dot.contains("1 -> 2;"));
        assert!(dot.contains("2 [penwidth=2];"));
        assert!(dot.contains("3 [penwidth=2];"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
