//! Symbolic machinery of the paper: static symbolic factorization, the LU
//! elimination forest, postordering and L/U supernode partitioning.
//!
//! The modules map one-to-one onto the paper's sections:
//!
//! * [`static_fact`] — George–Ng static symbolic factorization \[6\]
//!   producing `Ā = L̄ + Ū − I`, the structure valid for **every** partial
//!   pivoting row sequence (Section 1, step 2).
//! * [`eforest`] — the LU elimination forest of Definition 1 and the
//!   extended characterization of `L̄` rows (branches) and `Ū` columns
//!   (column subtrees) from Theorems 1–2, including the compact storage
//!   scheme the paper derives from them (Section 2).
//! * [`postorder`] — postordering the eforest: Theorem 3 invariance and the
//!   block-upper-triangular decomposition (Section 3).
//! * [`supernode`] — L/U supernode partitioning and amalgamation (Section 3,
//!   after \[10\]).

// Index-based loops are the natural idiom for the numerical kernels and
// symbolic algorithms in this crate; iterator rewrites obscure the maths.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coletree;
pub mod eforest;
pub mod fixtures;
pub mod postorder;
pub mod static_fact;
pub mod supernode;

pub use coletree::{ata_cholesky_bound, column_etree, etree_symmetric};
pub use eforest::{EliminationForest, ExtendedEforest};
pub use postorder::{block_triangular_form, postorder_permutation, BtfBlock};
pub use static_fact::{
    assemble_filled, assemble_filled_threads, fill_columns, fill_skeleton, static_symbolic_chunked,
    static_symbolic_factorization, static_symbolic_reference, FillChunk, FillScratch, FillSkeleton,
    FilledLu, SymbolicError,
};
pub use supernode::{amalgamate, supernode_partition, BlockStructure, Partition, SupernodeOptions};
