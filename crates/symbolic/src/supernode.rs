//! L/U supernode partitioning and amalgamation (Section 3, after S+ \[10\]).
//!
//! After static symbolic factorization, consecutive columns with identical
//! `L̄` structure *and* identical `Ū` row structure form an unsymmetric
//! supernode: the corresponding panel is dense in both factors, so the
//! numerical factorization can run on dense BLAS-3 blocks. The same
//! partition is then applied to the rows, subdividing the matrix into
//! `N × N` submatrix blocks (the paper's `B̄_kj`).
//!
//! Supernodes occurring in practice are small ("2 or 3 columns"), so
//! [`amalgamate`] merges adjacent supernodes while the fraction of explicit
//! zeros it introduces stays below a threshold — the paper's amalgamation
//! step.

use crate::static_fact::FilledLu;
use splu_sparse::SparsityPattern;

/// A partition of `0..n` into consecutive blocks (supernodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Block boundaries: block `k` spans `starts[k]..starts[k + 1]`;
    /// `starts.len() == num_blocks() + 1`.
    starts: Vec<usize>,
}

impl Partition {
    /// Builds a partition from boundary offsets (`starts[0] == 0`, strictly
    /// increasing, last element = `n`).
    pub fn from_starts(starts: Vec<usize>) -> Self {
        assert!(
            !starts.is_empty() && starts[0] == 0,
            "partition must start at 0"
        );
        assert!(
            starts.windows(2).all(|w| w[0] < w[1]),
            "partition boundaries must be strictly increasing"
        );
        Partition { starts }
    }

    /// The trivial partition: every column its own block.
    pub fn singletons(n: usize) -> Self {
        Partition {
            starts: (0..=n).collect(),
        }
    }

    /// Number of blocks `N`.
    pub fn num_blocks(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of columns.
    pub fn n(&self) -> usize {
        *self.starts.last().expect("starts nonempty")
    }

    /// Column range of block `k`.
    pub fn range(&self, k: usize) -> std::ops::Range<usize> {
        self.starts[k]..self.starts[k + 1]
    }

    /// Width of block `k`.
    pub fn width(&self, k: usize) -> usize {
        self.starts[k + 1] - self.starts[k]
    }

    /// Boundary offsets, length `num_blocks() + 1`.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Map column → block index.
    pub fn block_of_cols(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.n()];
        for k in 0..self.num_blocks() {
            for j in self.range(k) {
                out[j] = k;
            }
        }
        out
    }

    /// Largest block width.
    pub fn max_width(&self) -> usize {
        (0..self.num_blocks())
            .map(|k| self.width(k))
            .max()
            .unwrap_or(0)
    }

    /// Mean block width.
    pub fn mean_width(&self) -> f64 {
        if self.num_blocks() == 0 {
            0.0
        } else {
            self.n() as f64 / self.num_blocks() as f64
        }
    }
}

/// Computes the exact L/U supernode partition of a filled structure.
///
/// Columns `j` and `j + 1` share a supernode iff the sub-diagonal structure
/// of `L̄` column `j` equals that of column `j + 1` **and** the
/// super-diagonal structure of `Ū` row `j` equals that of row `j + 1`
/// (both including the required `(j+1, j)` / `(j, j+1)` couplings).
pub fn supernode_partition(f: &FilledLu) -> Partition {
    let n = f.n();
    let mut starts = vec![0usize];
    for j in 0..n.saturating_sub(1) {
        let l_match = f.l_col(j)[1..] == *f.l_col(j + 1);
        let u_match = f.u_row(j)[1..] == *f.u_row(j + 1);
        if !(l_match && u_match) {
            starts.push(j + 1);
        }
    }
    if n > 0 {
        starts.push(n);
    }
    Partition::from_starts(starts)
}

/// Tuning knobs for [`amalgamate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupernodeOptions {
    /// Maximum supernode width after amalgamation.
    pub max_width: usize,
    /// Maximum fraction of explicit zeros the merged panels may contain,
    /// relative to the merged panel storage.
    pub rel_fill: f64,
}

impl Default for SupernodeOptions {
    fn default() -> Self {
        SupernodeOptions {
            max_width: 48,
            rel_fill: 0.3,
        }
    }
}

/// Panel storage (in entries) and exact nonzeros of a candidate supernode
/// `[a, c)`, counting both the `L̄` and `Ū` panels.
fn panel_cost(f: &FilledLu, a: usize, c: usize) -> (usize, usize) {
    let width = c - a;
    // Rows below the panel reached by any column, columns right of the panel
    // reached by any row.
    let mut l_rows: Vec<usize> = Vec::new();
    let mut u_cols: Vec<usize> = Vec::new();
    let mut exact = 0usize;
    for j in a..c {
        exact += f.l_col(j).len() + f.u_row(j).len();
        l_rows.extend(f.l_col(j).iter().copied().filter(|&i| i >= c));
        u_cols.extend(f.u_row(j).iter().copied().filter(|&x| x >= c));
    }
    l_rows.sort_unstable();
    l_rows.dedup();
    u_cols.sort_unstable();
    u_cols.dedup();
    let triangle = width * (width + 1) / 2;
    let storage = 2 * triangle + width * (l_rows.len() + u_cols.len());
    (storage, exact)
}

/// Merges adjacent supernodes while the explicit-zero fraction of the merged
/// panels stays below `opts.rel_fill` and the width below `opts.max_width`.
///
/// Merging is restricted to supernodes connected by the scalar eforest
/// **parent relation** (`parent(last column of left) = first column of
/// right`). Columns of an exact supernode already form a parent chain, so
/// this keeps every amalgamated supernode a single chain of the elimination
/// forest — which is exactly what makes the block-level task graph of
/// Section 4 sound: every nonzero `Ū` block row of a chain supernode is
/// witnessed by its top column, so Theorem 1 lifts from scalar columns to
/// supernode blocks and the rule-4 edge targets always exist.
///
/// A single greedy left-to-right pass: each group is extended with the next
/// supernode as long as the chain relation and the fill criterion hold.
pub fn amalgamate(f: &FilledLu, base: &Partition, opts: &SupernodeOptions) -> Partition {
    let nb = base.num_blocks();
    if nb == 0 {
        return base.clone();
    }
    // Scalar parent relation at the candidate boundaries: parent(b - 1) = b
    // iff column b-1 has off-diagonal L entries and b is the first
    // off-diagonal of Ū row b-1.
    let chain_boundary =
        |b: usize| -> bool { f.l_col(b - 1).len() > 1 && f.u_row(b - 1).get(1) == Some(&b) };
    let mut starts = vec![0usize];
    let mut group_start = 0usize; // column index
    let mut k = 0usize;
    while k < nb {
        // Try to extend the current group [group_start, end_k) with block k+1.
        let mut end = base.range(k).end;
        let mut next = k + 1;
        while next < nb {
            let cand_end = base.range(next).end;
            if cand_end - group_start > opts.max_width {
                break;
            }
            if !chain_boundary(base.range(next).start) {
                break;
            }
            let (storage, exact) = panel_cost(f, group_start, cand_end);
            let zeros = storage.saturating_sub(exact);
            if (zeros as f64) > opts.rel_fill * storage as f64 {
                break;
            }
            end = cand_end;
            next += 1;
        }
        starts.push(end);
        group_start = end;
        k = next;
    }
    Partition::from_starts(starts)
}

/// Block structure of the filled matrix under a partition: which submatrix
/// blocks `B̄(I, J)` are structurally nonzero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockStructure {
    /// The column/row partition (identical, as in the paper).
    pub partition: Partition,
    /// For each block column `J`: sorted block rows `I ≥ J` with a nonzero
    /// `L̄` block (always starts with `J` itself).
    pub l_blocks: Vec<Vec<usize>>,
    /// For each block row `I`: sorted block columns `J ≥ I` with a nonzero
    /// `Ū` block (always starts with `I` itself).
    pub u_blocks: Vec<Vec<usize>>,
}

impl BlockStructure {
    /// Computes the block structure of `f` under `partition`.
    pub fn new(f: &FilledLu, partition: Partition) -> Self {
        let nb = partition.num_blocks();
        let block_of = partition.block_of_cols();
        let mut l_blocks: Vec<Vec<usize>> = vec![Vec::new(); nb];
        let mut u_blocks: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for jb in 0..nb {
            let mut mark = vec![false; nb];
            for j in partition.range(jb) {
                for &i in f.l_col(j) {
                    mark[block_of[i]] = true;
                }
            }
            l_blocks[jb] = (jb..nb).filter(|&ib| mark[ib]).collect();
        }
        for ib in 0..nb {
            let mut mark = vec![false; nb];
            for i in partition.range(ib) {
                for &c in f.u_row(i) {
                    mark[block_of[c]] = true;
                }
            }
            u_blocks[ib] = (ib..nb).filter(|&jb| mark[jb]).collect();
        }
        BlockStructure {
            partition,
            l_blocks,
            u_blocks,
        }
    }

    /// Number of blocks per side.
    pub fn num_blocks(&self) -> usize {
        self.partition.num_blocks()
    }

    /// `true` when block `(ib, jb)` is structurally nonzero (either factor).
    pub fn block_nonzero(&self, ib: usize, jb: usize) -> bool {
        if ib >= jb {
            self.l_blocks[jb].binary_search(&ib).is_ok()
        } else {
            self.u_blocks[ib].binary_search(&jb).is_ok()
        }
    }

    /// Block-level sparsity pattern (N×N) of `Ā`.
    pub fn block_pattern(&self) -> SparsityPattern {
        let nb = self.num_blocks();
        let mut entries = Vec::new();
        for jb in 0..nb {
            for &ib in &self.l_blocks[jb] {
                entries.push((ib, jb));
            }
        }
        for ib in 0..nb {
            for &jb in &self.u_blocks[ib] {
                if jb > ib {
                    entries.push((ib, jb));
                }
            }
        }
        SparsityPattern::from_entries(nb, nb, entries).expect("block indices are in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1_pattern;
    use crate::postorder::postorder_permutation;
    use crate::static_fact::static_symbolic_factorization;
    use splu_sparse::SparsityPattern;

    fn filled(p: &SparsityPattern) -> FilledLu {
        static_symbolic_factorization(p).unwrap()
    }

    #[test]
    fn partition_basics() {
        let p = Partition::from_starts(vec![0, 2, 3, 7]);
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.n(), 7);
        assert_eq!(p.range(0), 0..2);
        assert_eq!(p.width(2), 4);
        assert_eq!(p.block_of_cols(), vec![0, 0, 1, 2, 2, 2, 2]);
        assert_eq!(p.max_width(), 4);
        assert!((p.mean_width() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn partition_rejects_bad_boundaries() {
        Partition::from_starts(vec![0, 3, 3]);
    }

    #[test]
    fn dense_matrix_is_one_supernode() {
        let n = 5;
        let p =
            SparsityPattern::from_entries(n, n, (0..n).flat_map(|i| (0..n).map(move |j| (i, j))))
                .unwrap();
        let f = filled(&p);
        let part = supernode_partition(&f);
        assert_eq!(part.num_blocks(), 1);
        assert_eq!(part.width(0), n);
    }

    #[test]
    fn diagonal_matrix_is_all_singletons() {
        let f = filled(&SparsityPattern::identity(6));
        let part = supernode_partition(&f);
        assert_eq!(part.num_blocks(), 6);
        assert_eq!(part.max_width(), 1);
    }

    /// Supernode columns must be genuinely identical in both factors.
    #[test]
    fn partition_columns_share_structure() {
        let p = fig1_pattern();
        let f = filled(&p);
        let part = supernode_partition(&f);
        for k in 0..part.num_blocks() {
            let r = part.range(k);
            for j in r.start..r.end.saturating_sub(1) {
                assert_eq!(f.l_col(j)[1..], *f.l_col(j + 1), "L mismatch in supernode");
                assert_eq!(f.u_row(j)[1..], *f.u_row(j + 1), "U mismatch in supernode");
            }
        }
    }

    /// Postordering must not increase the number of supernodes on matrices
    /// where it brings siblings together (the paper's Table 3 effect).
    #[test]
    fn postordering_does_not_fragment_supernodes() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        let mut improved = 0usize;
        let mut total = 0usize;
        for _ in 0..12 {
            let n = 30;
            let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            for _ in 0..70 {
                entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
            }
            let p = SparsityPattern::from_entries(n, n, entries).unwrap();
            let f = filled(&p);
            let sn = supernode_partition(&f).num_blocks();
            let po = postorder_permutation(&f);
            let f2 = static_symbolic_factorization(&p.permuted(&po, &po)).unwrap();
            let snpo = supernode_partition(&f2).num_blocks();
            total += 1;
            if snpo <= sn {
                improved += 1;
            }
        }
        // Postordering should help (or tie) in the vast majority of cases.
        assert!(
            improved * 3 >= total * 2,
            "postordering fragmented supernodes too often: {improved}/{total}"
        );
    }

    #[test]
    fn amalgamation_reduces_block_count_and_respects_width() {
        let p = fig1_pattern();
        let f = filled(&p);
        let base = supernode_partition(&f);
        let opts = SupernodeOptions {
            max_width: 4,
            rel_fill: 0.9,
        };
        let am = amalgamate(&f, &base, &opts);
        assert!(am.num_blocks() <= base.num_blocks());
        assert!(am.max_width() <= 4);
        assert_eq!(am.n(), base.n());
    }

    #[test]
    fn amalgamation_with_zero_tolerance_is_identity_on_singletons() {
        let f = filled(&SparsityPattern::identity(5));
        let base = supernode_partition(&f);
        let opts = SupernodeOptions {
            max_width: 5,
            rel_fill: 0.0,
        };
        let am = amalgamate(&f, &base, &opts);
        // Merging two disjoint singleton columns introduces zeros, so
        // nothing merges at tolerance 0 unless structures truly overlap.
        assert_eq!(am.num_blocks(), 5);
    }

    #[test]
    fn block_structure_covers_every_entry() {
        let p = fig1_pattern();
        let f = filled(&p);
        let part = supernode_partition(&f);
        let bs = BlockStructure::new(&f, part);
        let block_of = bs.partition.block_of_cols();
        for (i, j) in f.filled_pattern().entries() {
            assert!(
                bs.block_nonzero(block_of[i], block_of[j]),
                "entry ({i},{j}) not covered by block structure"
            );
        }
        // Diagonal blocks always present.
        for k in 0..bs.num_blocks() {
            assert!(bs.block_nonzero(k, k));
            assert_eq!(bs.l_blocks[k][0], k);
            assert_eq!(bs.u_blocks[k][0], k);
        }
        let bp = bs.block_pattern();
        assert!(bp.has_zero_free_diagonal());
    }

    #[test]
    fn panel_cost_counts_triangles_once() {
        // Dense 3x3: one supernode [0,3): storage = 2*6 + 0 = 12,
        // exact = Σ |l_col| + |u_row| = (3+2+1)+(3+2+1) = 12 → no zeros.
        let n = 3;
        let p =
            SparsityPattern::from_entries(n, n, (0..n).flat_map(|i| (0..n).map(move |j| (i, j))))
                .unwrap();
        let f = filled(&p);
        let (storage, exact) = panel_cost(&f, 0, 3);
        assert_eq!(storage, 12);
        assert_eq!(exact, 12);
    }
}
