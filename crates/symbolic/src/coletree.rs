//! The column elimination tree (the etree of `AᵀA`) and the SuperLU-style
//! structure bound it induces.
//!
//! SuperLU postorders the *column etree* and upper-bounds the LU structures
//! by the Cholesky factor of `AᵀA`. Section 3 of the paper argues this
//! "substantially overestimates the structures of L and U"; this module
//! provides the machinery to quantify that claim (see the `fill_bounds`
//! benchmark binary): Liu's etree algorithm with path compression and a
//! symbolic Cholesky factorization for the `AᵀA` bound.

use crate::eforest::EliminationForest;
use splu_sparse::SparsityPattern;

/// Computes the elimination tree of a **symmetric** pattern (only the lower
/// triangle is read) using Liu's algorithm with path compression.
pub fn etree_symmetric(pattern: &SparsityPattern) -> EliminationForest {
    assert!(pattern.is_square(), "etree requires a square pattern");
    let n = pattern.ncols();
    let mut parent = vec![usize::MAX; n];
    let mut ancestor = vec![usize::MAX; n];
    for j in 0..n {
        for &i in pattern.col(j) {
            if i >= j {
                continue;
            }
            // Walk from i to the root of its current tree, compressing.
            let mut x = i;
            while ancestor[x] != usize::MAX && ancestor[x] != j {
                let next = ancestor[x];
                ancestor[x] = j;
                x = next;
            }
            if ancestor[x] == usize::MAX {
                ancestor[x] = j;
                parent[x] = j;
            }
        }
    }
    EliminationForest::from_parent_vec(parent)
}

/// The column elimination tree of a (generally unsymmetric) matrix: the
/// etree of `AᵀA` — the structure SuperLU postorders.
pub fn column_etree(pattern: &SparsityPattern) -> EliminationForest {
    etree_symmetric(&pattern.ata())
}

/// Symbolic Cholesky factorization of a **symmetric** pattern: returns the
/// row structure of each column of the factor `L` (diagonal included).
///
/// Classic up-looking merge: the structure of column `j` is the union of
/// the original column and the structures of its etree children, restricted
/// to rows `≥ j`.
pub fn cholesky_column_structures(pattern: &SparsityPattern) -> Vec<Vec<usize>> {
    assert!(pattern.is_square(), "requires a square pattern");
    let n = pattern.ncols();
    let forest = etree_symmetric(pattern);
    let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut mark = vec![usize::MAX; n];
    for j in 0..n {
        let mut s: Vec<usize> = Vec::new();
        mark[j] = j;
        s.push(j);
        for &i in pattern.col(j) {
            if i > j && mark[i] != j {
                mark[i] = j;
                s.push(i);
            }
        }
        for &c in forest.children(j) {
            for &i in &cols[c] {
                if i > j && mark[i] != j {
                    mark[i] = j;
                    s.push(i);
                }
            }
        }
        s.sort_unstable();
        cols[j] = s;
    }
    cols
}

/// Number of entries in the Cholesky factor of `AᵀA` — the SuperLU upper
/// bound on `|L| + |U|` (each factor bounded by `R`/`Rᵀ` of the `AᵀA`
/// factorization, so the combined bound is `2·|R| − n`).
pub fn ata_cholesky_bound(pattern: &SparsityPattern) -> usize {
    let ata = pattern.ata();
    let chol: usize = cholesky_column_structures(&ata).iter().map(Vec::len).sum();
    2 * chol - pattern.ncols()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1_pattern;
    use crate::static_fact::static_symbolic_factorization;
    use splu_sparse::SparsityPattern;

    fn dense_chol_fill(p: &SparsityPattern) -> Vec<Vec<usize>> {
        // O(n³) boolean elimination reference.
        let n = p.ncols();
        let sym = p.union(&p.transpose());
        let mut m = vec![vec![false; n]; n];
        for (i, j) in sym.entries() {
            m[i][j] = true;
            m[j][i] = true;
        }
        for k in 0..n {
            for i in k + 1..n {
                if m[i][k] {
                    for j in k + 1..n {
                        if m[k][j] {
                            m[i][j] = true;
                        }
                    }
                }
            }
        }
        (0..n)
            .map(|j| (j..n).filter(|&i| i == j || m[i][j]).collect())
            .collect()
    }

    fn random_sym(n: usize, extra: usize, seed: u64) -> SparsityPattern {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for _ in 0..extra {
            let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
            e.push((a, b));
            e.push((b, a));
        }
        SparsityPattern::from_entries(n, n, e).unwrap()
    }

    #[test]
    fn etree_matches_fill_reference() {
        for seed in 0..6 {
            let p = random_sym(16, 24, seed);
            let forest = etree_symmetric(&p);
            let chol = dense_chol_fill(&p);
            // parent(j) = min{i > j : l_ij ≠ 0} — the classical etree
            // characterization.
            for j in 0..16 {
                let expected = chol[j].iter().copied().find(|&i| i > j);
                assert_eq!(forest.parent(j), expected, "node {j}, seed {seed}");
            }
        }
    }

    #[test]
    fn symbolic_cholesky_matches_reference() {
        for seed in 0..6 {
            let p = random_sym(14, 20, seed);
            let fast = cholesky_column_structures(&p);
            let slow = dense_chol_fill(&p);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn ata_bound_dominates_static_structure() {
        // The SuperLU bound must be at least as large as the George–Ng
        // static structure (the paper's overestimation claim, lower-bounded).
        for seed in 0..6 {
            let p = {
                use rand::rngs::SmallRng;
                use rand::{Rng, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(seed);
                let n = 20;
                let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
                for _ in 0..45 {
                    e.push((rng.gen_range(0..n), rng.gen_range(0..n)));
                }
                SparsityPattern::from_entries(n, n, e).unwrap()
            };
            let f = static_symbolic_factorization(&p).unwrap();
            let bound = ata_cholesky_bound(&p);
            assert!(
                bound >= f.nnz_filled(),
                "AᵀA bound {bound} below static structure {} (seed {seed})",
                f.nnz_filled()
            );
        }
    }

    #[test]
    fn column_etree_of_fig1_is_a_tree_over_all_nodes() {
        let p = fig1_pattern();
        let forest = column_etree(&p);
        assert_eq!(forest.n(), 7);
        // Every node's parent, when present, is larger.
        for j in 0..7 {
            if let Some(par) = forest.parent(j) {
                assert!(par > j);
            }
        }
    }

    #[test]
    fn diagonal_pattern_has_no_tree_edges() {
        let p = SparsityPattern::identity(5);
        let forest = etree_symmetric(&p);
        assert_eq!(forest.roots().len(), 5);
        let chol = cholesky_column_structures(&p);
        assert!(chol.iter().all(|c| c.len() == 1));
        assert_eq!(ata_cholesky_bound(&p), 5);
    }
}
