//! Static symbolic factorization (George & Ng, 1987).
//!
//! Computes structures `L̄`, `Ū` containing the nonzeros of the LU factors of
//! `P A` for **every** row permutation `P` that partial pivoting could
//! select. The numerical factorization can then run on a fixed data
//! structure (the S*/S+ approach the paper builds on), at the cost of some
//! explicitly stored zeros.
//!
//! The scheme: at step `k`, the *candidate pivot rows* are the uneliminated
//! rows with a nonzero in column `k`. Row `k` of `Ū` becomes the union of
//! the candidate rows' structures; column `k` of `L̄` becomes the candidate
//! row set; every remaining candidate row's structure is replaced by that
//! union. Because all candidates end up structurally identical, the
//! implementation keeps one shared structure per *row class* (union–find),
//! which is how S+ achieves near-linear behaviour.

use splu_sparse::{SparseError, SparsityPattern};

/// Structures of the filled factors `L̄` (lower, including the unit
/// diagonal) and `Ū` (upper, including the diagonal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilledLu {
    /// Lower-triangular structure, diagonal included.
    pub l: SparsityPattern,
    /// Upper-triangular structure, diagonal included.
    pub u: SparsityPattern,
    /// Row-major copy of `Ū` ("column" `i` = row `i` of `Ū`), kept because
    /// the eforest and supernode algorithms walk `Ū` by rows.
    u_rows: SparsityPattern,
}

impl FilledLu {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.l.ncols()
    }

    /// Total entries of `Ā = L̄ + Ū − I` (diagonal counted once).
    pub fn nnz_filled(&self) -> usize {
        self.l.nnz() + self.u.nnz() - self.n()
    }

    /// The pattern of `Ā = L̄ + Ū − I`.
    pub fn filled_pattern(&self) -> SparsityPattern {
        self.l.union(&self.u)
    }

    /// Rows of `L̄` column `j` (strictly increasing, starts with `j`).
    pub fn l_col(&self, j: usize) -> &[usize] {
        self.l.col(j)
    }

    /// Columns of `Ū` row `i` (strictly increasing, starts with `i`).
    ///
    /// `Ū` is stored transposed internally through [`Self::u`] being a
    /// column pattern; this accessor reads the row via the precomputed
    /// row-major copy.
    pub fn u_row(&self, i: usize) -> &[usize] {
        self.u_rows.col(i)
    }

    /// Pattern of `Ū` by rows (each "column" `i` of the returned pattern is
    /// row `i` of `Ū`).
    pub fn u_by_rows(&self) -> &SparsityPattern {
        &self.u_rows
    }
}

impl FilledLu {
    /// Builds a [`FilledLu`] from the two triangular patterns, establishing
    /// the internal row-major copy of `Ū`.
    pub fn from_parts(l: SparsityPattern, u: SparsityPattern) -> Self {
        let u_rows = u.transpose();
        FilledLu { l, u, u_rows }
    }
}

/// Errors from the symbolic phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolicError {
    /// The input pattern was not square.
    NotSquare,
    /// The diagonal had a structural zero at this index; run the maximum
    /// transversal first.
    ZeroOnDiagonal(usize),
    /// Propagated substrate error.
    Sparse(SparseError),
}

impl std::fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymbolicError::NotSquare => write!(f, "pattern is not square"),
            SymbolicError::ZeroOnDiagonal(i) => {
                write!(f, "structural zero on the diagonal at index {i}")
            }
            SymbolicError::Sparse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SymbolicError {}

impl From<SparseError> for SymbolicError {
    fn from(e: SparseError) -> Self {
        SymbolicError::Sparse(e)
    }
}

/// Runs the static symbolic factorization on a square pattern with a
/// zero-free diagonal.
pub fn static_symbolic_factorization(pattern: &SparsityPattern) -> Result<FilledLu, SymbolicError> {
    if !pattern.is_square() {
        return Err(SymbolicError::NotSquare);
    }
    let n = pattern.ncols();
    for j in 0..n {
        if !pattern.contains(j, j) {
            return Err(SymbolicError::ZeroOnDiagonal(j));
        }
    }
    if n == 0 {
        let empty = SparsityPattern::empty(0, 0);
        return Ok(FilledLu::from_parts(empty.clone(), empty));
    }

    // Row structures, by row: columns of each row, sorted.
    let by_rows = pattern.transpose();

    // Union–find over rows; each class representative owns a shared
    // structure (sorted column list, trimmed to columns ≥ current step) and
    // the list of member rows still uneliminated.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    let mut class_struct: Vec<Vec<usize>> = (0..n).map(|i| by_rows.col(i).to_vec()).collect();
    let mut class_rows: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    // Buckets: class representatives whose smallest remaining column is k.
    let mut bucket: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let first = class_struct[i][0];
        bucket[first].push(i);
    }

    let mut l_cols: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut u_rows: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut merge_scratch: Vec<usize> = Vec::new();
    let mut in_union = vec![false; n];

    for k in 0..n {
        // Representatives of classes whose first remaining column is k.
        let mut reps: Vec<usize> = Vec::new();
        for cand in std::mem::take(&mut bucket[k]) {
            let r = find(&mut parent, cand);
            if !class_rows[r].is_empty()
                && !class_struct[r].is_empty()
                && class_struct[r][0] == k
                && !reps.contains(&r)
            {
                reps.push(r);
            }
        }
        debug_assert!(
            !reps.is_empty(),
            "zero-free diagonal guarantees a candidate class at step {k}"
        );

        // Union of the candidate structures (columns ≥ k).
        merge_scratch.clear();
        for &r in &reps {
            for &c in &class_struct[r] {
                if !in_union[c] {
                    in_union[c] = true;
                    merge_scratch.push(c);
                }
            }
        }
        merge_scratch.sort_unstable();
        for &c in &merge_scratch {
            in_union[c] = false;
        }
        // Ū row k = the union (starts at k by construction).
        u_rows.push(merge_scratch.clone());

        // L̄ column k = all rows in the candidate classes (all ≥ k).
        let mut lcol: Vec<usize> = Vec::new();
        for &r in &reps {
            lcol.extend_from_slice(&class_rows[r]);
        }
        lcol.sort_unstable();
        debug_assert_eq!(lcol.first(), Some(&k), "pivot row k must be a candidate");
        l_cols.push(lcol);

        // Merge the classes into one; drop column k and row k from it.
        let root = reps[0];
        for &r in &reps[1..] {
            parent[r] = root;
            let rows = std::mem::take(&mut class_rows[r]);
            class_rows[root].extend(rows);
            class_struct[r] = Vec::new();
        }
        class_rows[root].retain(|&i| i != k);
        let mut s = std::mem::take(&mut merge_scratch);
        s.retain(|&c| c > k);
        class_struct[root] = s;
        if !class_rows[root].is_empty() {
            debug_assert!(
                !class_struct[root].is_empty(),
                "surviving rows must have a diagonal entry ahead"
            );
            let first = class_struct[root][0];
            bucket[first].push(root);
        }
    }

    // Assemble L̄ (by columns) and Ū (by columns, from its rows).
    let l = SparsityPattern::new(
        n,
        n,
        {
            let mut ptr = Vec::with_capacity(n + 1);
            ptr.push(0);
            let mut acc = 0;
            for c in &l_cols {
                acc += c.len();
                ptr.push(acc);
            }
            ptr
        },
        l_cols.concat(),
    )?;
    let u_row_pattern = SparsityPattern::new(
        n,
        n,
        {
            let mut ptr = Vec::with_capacity(n + 1);
            ptr.push(0);
            let mut acc = 0;
            for r in &u_rows {
                acc += r.len();
                ptr.push(acc);
            }
            ptr
        },
        u_rows.concat(),
    )?;
    // `u_row_pattern` holds row i in its column slot i; transposing yields
    // the column-compressed Ū.
    let u = u_row_pattern.transpose();
    Ok(FilledLu::from_parts(l, u))
}

/// Brute-force reference implementation on dense boolean matrices, O(n³).
///
/// Used by the test-suite (and available to downstream property tests) to
/// validate the union–find implementation.
pub fn static_symbolic_reference(pattern: &SparsityPattern) -> Result<FilledLu, SymbolicError> {
    if !pattern.is_square() {
        return Err(SymbolicError::NotSquare);
    }
    let n = pattern.ncols();
    for j in 0..n {
        if !pattern.contains(j, j) {
            return Err(SymbolicError::ZeroOnDiagonal(j));
        }
    }
    let mut a = vec![vec![false; n]; n];
    for (i, j) in pattern.entries() {
        a[i][j] = true;
    }
    let mut eliminated = vec![false; n];
    let mut l_entries: Vec<(usize, usize)> = Vec::new();
    let mut u_entries: Vec<(usize, usize)> = Vec::new();
    for k in 0..n {
        let candidates: Vec<usize> = (0..n).filter(|&i| !eliminated[i] && a[i][k]).collect();
        // Union of candidate structures over columns ≥ k.
        let mut union_row = vec![false; n];
        for &i in &candidates {
            for (j, ur) in union_row.iter_mut().enumerate().skip(k) {
                *ur |= a[i][j];
            }
        }
        for (j, &u) in union_row.iter().enumerate().skip(k) {
            if u {
                u_entries.push((k, j));
            }
        }
        for &i in &candidates {
            l_entries.push((i, k));
            a[i][k..n].copy_from_slice(&union_row[k..n]);
        }
        eliminated[k] = true;
        for row in a.iter_mut() {
            row[k] = false;
        }
    }
    let l = SparsityPattern::from_entries(n, n, l_entries)?;
    let u_rows = SparsityPattern::from_entries(n, n, u_entries.iter().map(|&(i, j)| (j, i)))?;
    Ok(FilledLu::from_parts(l, u_rows.transpose()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::SparsityPattern;

    use crate::fixtures::fig1_pattern;

    #[test]
    fn rejects_bad_inputs() {
        let rect = SparsityPattern::empty(2, 3);
        assert_eq!(
            static_symbolic_factorization(&rect),
            Err(SymbolicError::NotSquare)
        );
        let holed = SparsityPattern::from_entries(2, 2, vec![(0, 0), (0, 1)]).unwrap();
        assert_eq!(
            static_symbolic_factorization(&holed),
            Err(SymbolicError::ZeroOnDiagonal(1))
        );
    }

    #[test]
    fn diagonal_matrix_has_no_fill() {
        let p = SparsityPattern::identity(5);
        let f = static_symbolic_factorization(&p).unwrap();
        assert_eq!(f.l, SparsityPattern::identity(5));
        assert_eq!(f.u, SparsityPattern::identity(5));
        assert_eq!(f.nnz_filled(), 5);
    }

    #[test]
    fn dense_matrix_stays_dense() {
        let n = 4;
        let p =
            SparsityPattern::from_entries(n, n, (0..n).flat_map(|i| (0..n).map(move |j| (i, j))))
                .unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        assert_eq!(f.l.nnz(), n * (n + 1) / 2);
        assert_eq!(f.u.nnz(), n * (n + 1) / 2);
    }

    #[test]
    fn contains_original_pattern() {
        let p = fig1_pattern();
        let f = static_symbolic_factorization(&p).unwrap();
        let filled = f.filled_pattern();
        for (i, j) in p.entries() {
            assert!(filled.contains(i, j), "lost original entry ({i},{j})");
        }
    }

    #[test]
    fn matches_reference_on_fig1() {
        let p = fig1_pattern();
        let fast = static_symbolic_factorization(&p).unwrap();
        let slow = static_symbolic_reference(&p).unwrap();
        assert_eq!(fast.l, slow.l);
        assert_eq!(fast.u, slow.u);
    }

    #[test]
    fn matches_reference_on_random_matrices() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        for n in [1usize, 2, 3, 5, 8, 13, 21] {
            for _ in 0..8 {
                let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
                for _ in 0..(2 * n) {
                    entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
                }
                let p = SparsityPattern::from_entries(n, n, entries).unwrap();
                let fast = static_symbolic_factorization(&p).unwrap();
                let slow = static_symbolic_reference(&p).unwrap();
                assert_eq!(fast.l, slow.l, "L mismatch, n={n}");
                assert_eq!(fast.u, slow.u, "U mismatch, n={n}");
            }
        }
    }

    #[test]
    fn upper_bounds_cholesky_of_ata_is_not_required_but_lu_covers_any_pivoting() {
        // For every pivot order realizable by partial pivoting, the actual
        // fill must be inside (L̄, Ū). We verify on a small matrix by brute
        // force: simulate Gaussian elimination structure for EVERY candidate
        // pivot choice sequence and check containment.
        let p = fig1_pattern();
        let f = static_symbolic_factorization(&p).unwrap();
        let n = p.ncols();
        let mut worklist = vec![{
            let mut a = vec![vec![false; n]; n];
            for (i, j) in p.entries() {
                a[i][j] = true;
            }
            (0usize, a, (0..n).collect::<Vec<usize>>())
        }];
        // (step, current structure, row labels: row_labels[r] = original row)
        // Enumerate every pivot choice (bounded: n=7, candidates small).
        let mut explored = 0usize;
        while let Some((k, a, labels)) = worklist.pop() {
            explored += 1;
            if explored > 5000 {
                break; // combinatorial safety valve; plenty explored already
            }
            if k == n {
                continue;
            }
            let candidates: Vec<usize> = (k..n).filter(|&r| a[r][k]).collect();
            assert!(!candidates.is_empty(), "structurally nonsingular");
            for &piv in &candidates {
                let mut b = a.clone();
                let mut lab = labels.clone();
                b.swap(k, piv);
                lab.swap(k, piv);
                // Row k is now the pivot row: check U row containment.
                for j in k..n {
                    if b[k][j] {
                        assert!(
                            f.u.contains(k, j),
                            "U entry ({k},{j}) outside static structure"
                        );
                    }
                }
                for r in k + 1..n {
                    if b[r][k] {
                        // L entry at (position r) — static L̄ column k must
                        // contain position r.
                        assert!(
                            f.l.contains(r, k),
                            "L entry ({r},{k}) outside static structure"
                        );
                        for j in k + 1..n {
                            if b[k][j] {
                                b[r][j] = true; // fill
                            }
                        }
                    }
                }
                worklist.push((k + 1, b, lab));
            }
        }
        assert!(explored > 100, "exploration should branch");
    }

    #[test]
    fn empty_matrix() {
        let p = SparsityPattern::empty(0, 0);
        let f = static_symbolic_factorization(&p).unwrap();
        assert_eq!(f.n(), 0);
        assert_eq!(f.nnz_filled(), 0);
    }

    #[test]
    fn u_row_accessor_agrees_with_column_pattern() {
        let p = fig1_pattern();
        let f = static_symbolic_factorization(&p).unwrap();
        for i in 0..p.ncols() {
            for &j in f.u_row(i) {
                assert!(f.u.contains(i, j));
            }
            let via_cols: Vec<usize> = (0..p.ncols()).filter(|&j| f.u.contains(i, j)).collect();
            assert_eq!(f.u_row(i), &via_cols[..]);
        }
    }
}
