//! Static symbolic factorization (George & Ng, 1987).
//!
//! Computes structures `L̄`, `Ū` containing the nonzeros of the LU factors of
//! `P A` for **every** row permutation `P` that partial pivoting could
//! select. The numerical factorization can then run on a fixed data
//! structure (the S*/S+ approach the paper builds on), at the cost of some
//! explicitly stored zeros.
//!
//! The scheme: at step `k`, the *candidate pivot rows* are the uneliminated
//! rows with a nonzero in column `k`. Row `k` of `Ū` becomes the union of
//! the candidate rows' structures; column `k` of `L̄` becomes the candidate
//! row set; every remaining candidate row's structure is replaced by that
//! union. Because all candidates end up structurally identical, the
//! implementation keeps one shared structure per *row class* (union–find),
//! which is how S+ achieves near-linear behaviour.

use splu_sparse::{SparseError, SparsityPattern};
use std::ops::Range;

/// Structures of the filled factors `L̄` (lower, including the unit
/// diagonal) and `Ū` (upper, including the diagonal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilledLu {
    /// Lower-triangular structure, diagonal included.
    pub l: SparsityPattern,
    /// Upper-triangular structure, diagonal included.
    pub u: SparsityPattern,
    /// Row-major copy of `Ū` ("column" `i` = row `i` of `Ū`), kept because
    /// the eforest and supernode algorithms walk `Ū` by rows.
    u_rows: SparsityPattern,
}

impl FilledLu {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.l.ncols()
    }

    /// Total entries of `Ā = L̄ + Ū − I` (diagonal counted once).
    pub fn nnz_filled(&self) -> usize {
        self.l.nnz() + self.u.nnz() - self.n()
    }

    /// The pattern of `Ā = L̄ + Ū − I`.
    pub fn filled_pattern(&self) -> SparsityPattern {
        self.l.union(&self.u)
    }

    /// Rows of `L̄` column `j` (strictly increasing, starts with `j`).
    pub fn l_col(&self, j: usize) -> &[usize] {
        self.l.col(j)
    }

    /// Columns of `Ū` row `i` (strictly increasing, starts with `i`).
    ///
    /// `Ū` is stored transposed internally through [`Self::u`] being a
    /// column pattern; this accessor reads the row via the precomputed
    /// row-major copy.
    pub fn u_row(&self, i: usize) -> &[usize] {
        self.u_rows.col(i)
    }

    /// Pattern of `Ū` by rows (each "column" `i` of the returned pattern is
    /// row `i` of `Ū`).
    pub fn u_by_rows(&self) -> &SparsityPattern {
        &self.u_rows
    }
}

impl FilledLu {
    /// Builds a [`FilledLu`] from the two triangular patterns, establishing
    /// the internal row-major copy of `Ū`.
    pub fn from_parts(l: SparsityPattern, u: SparsityPattern) -> Self {
        let u_rows = u.transpose();
        FilledLu { l, u, u_rows }
    }
}

/// Errors from the symbolic phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolicError {
    /// The input pattern was not square.
    NotSquare,
    /// The diagonal had a structural zero at this index; run the maximum
    /// transversal first.
    ZeroOnDiagonal(usize),
    /// Propagated substrate error.
    Sparse(SparseError),
}

impl std::fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymbolicError::NotSquare => write!(f, "pattern is not square"),
            SymbolicError::ZeroOnDiagonal(i) => {
                write!(f, "structural zero on the diagonal at index {i}")
            }
            SymbolicError::Sparse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SymbolicError {}

impl From<SparseError> for SymbolicError {
    fn from(e: SparseError) -> Self {
        SymbolicError::Sparse(e)
    }
}

/// Runs the static symbolic factorization on a square pattern with a
/// zero-free diagonal.
pub fn static_symbolic_factorization(pattern: &SparsityPattern) -> Result<FilledLu, SymbolicError> {
    if !pattern.is_square() {
        return Err(SymbolicError::NotSquare);
    }
    let n = pattern.ncols();
    for j in 0..n {
        if !pattern.contains(j, j) {
            return Err(SymbolicError::ZeroOnDiagonal(j));
        }
    }
    if n == 0 {
        let empty = SparsityPattern::empty(0, 0);
        return Ok(FilledLu::from_parts(empty.clone(), empty));
    }

    // Row structures, by row: columns of each row, sorted.
    let by_rows = pattern.transpose();

    // Union–find over rows; each class representative owns a shared
    // structure (sorted column list, trimmed to columns ≥ current step) and
    // the list of member rows still uneliminated.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    let mut class_struct: Vec<Vec<usize>> = (0..n).map(|i| by_rows.col(i).to_vec()).collect();
    let mut class_rows: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    // Buckets: class representatives whose smallest remaining column is k.
    let mut bucket: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let first = class_struct[i][0];
        bucket[first].push(i);
    }

    let mut l_cols: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut u_rows: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut merge_scratch: Vec<usize> = Vec::new();
    let mut in_union = vec![false; n];

    for k in 0..n {
        // Representatives of classes whose first remaining column is k.
        let mut reps: Vec<usize> = Vec::new();
        for cand in std::mem::take(&mut bucket[k]) {
            let r = find(&mut parent, cand);
            if !class_rows[r].is_empty()
                && !class_struct[r].is_empty()
                && class_struct[r][0] == k
                && !reps.contains(&r)
            {
                reps.push(r);
            }
        }
        debug_assert!(
            !reps.is_empty(),
            "zero-free diagonal guarantees a candidate class at step {k}"
        );

        // Union of the candidate structures (columns ≥ k).
        merge_scratch.clear();
        for &r in &reps {
            for &c in &class_struct[r] {
                if !in_union[c] {
                    in_union[c] = true;
                    merge_scratch.push(c);
                }
            }
        }
        merge_scratch.sort_unstable();
        for &c in &merge_scratch {
            in_union[c] = false;
        }
        // Ū row k = the union (starts at k by construction).
        u_rows.push(merge_scratch.clone());

        // L̄ column k = all rows in the candidate classes (all ≥ k).
        let mut lcol: Vec<usize> = Vec::new();
        for &r in &reps {
            lcol.extend_from_slice(&class_rows[r]);
        }
        lcol.sort_unstable();
        debug_assert_eq!(lcol.first(), Some(&k), "pivot row k must be a candidate");
        l_cols.push(lcol);

        // Merge the classes into one; drop column k and row k from it.
        let root = reps[0];
        for &r in &reps[1..] {
            parent[r] = root;
            let rows = std::mem::take(&mut class_rows[r]);
            class_rows[root].extend(rows);
            class_struct[r] = Vec::new();
        }
        class_rows[root].retain(|&i| i != k);
        let mut s = std::mem::take(&mut merge_scratch);
        s.retain(|&c| c > k);
        class_struct[root] = s;
        if !class_rows[root].is_empty() {
            debug_assert!(
                !class_struct[root].is_empty(),
                "surviving rows must have a diagonal entry ahead"
            );
            let first = class_struct[root][0];
            bucket[first].push(root);
        }
    }

    // Assemble L̄ (by columns) and Ū (by columns, from its rows).
    let l = SparsityPattern::new(
        n,
        n,
        {
            let mut ptr = Vec::with_capacity(n + 1);
            ptr.push(0);
            let mut acc = 0;
            for c in &l_cols {
                acc += c.len();
                ptr.push(acc);
            }
            ptr
        },
        l_cols.concat(),
    )?;
    let u_row_pattern = SparsityPattern::new(
        n,
        n,
        {
            let mut ptr = Vec::with_capacity(n + 1);
            ptr.push(0);
            let mut acc = 0;
            for r in &u_rows {
                acc += r.len();
                ptr.push(acc);
            }
            ptr
        },
        u_rows.concat(),
    )?;
    // `u_row_pattern` holds row i in its column slot i; transposing yields
    // the column-compressed Ū.
    let u = u_row_pattern.transpose();
    Ok(FilledLu::from_parts(l, u))
}

/// Output of the sequential skeleton pass of the chunked (parallel-friendly)
/// static symbolic factorization — see [`fill_skeleton`].
///
/// The skeleton is everything the per-column reachability pass needs:
///
/// * `parent[k]` — the next candidate step of the row class eliminated at
///   step `k` (`usize::MAX` when the class dies at `k`). This is exactly the
///   LU eforest parent array of Definition 1: the class's trimmed structure
///   minimum *is* `min{ r > k : ū_kr ≠ 0 }`, and the class survives step `k`
///   precisely when `|L̄_{*k}| > 1`.
/// * `first[r]` — the first candidate step of original row `r` (its minimum
///   column index), where row `r`'s climb through `parent` begins;
/// * `l_len[j]` / `u_len[i]` — the exact entry counts of `L̄` column `j`
///   and `Ū` row `i` (diagonal included), so the assembly can lay out every
///   CSC array without counting passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillSkeleton {
    n: usize,
    parent: Vec<usize>,
    first: Vec<usize>,
    l_len: Vec<usize>,
    u_len: Vec<usize>,
}

impl FillSkeleton {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The eforest parent array (`usize::MAX` = root), valid input for
    /// [`crate::eforest::EliminationForest::from_parent_vec`].
    pub fn parents(&self) -> &[usize] {
        &self.parent
    }

    /// First candidate step (minimum column index) of each original row.
    pub fn first(&self) -> &[usize] {
        &self.first
    }

    /// Entry count of each `L̄` column (diagonal included).
    pub fn l_len(&self) -> &[usize] {
        &self.l_len
    }

    /// Entry count of each `Ū` row (diagonal included).
    pub fn u_len(&self) -> &[usize] {
        &self.u_len
    }

    /// Total filled entries of `Ā = L̄ + Ū − I` (diagonal counted once).
    pub fn nnz_filled(&self) -> usize {
        self.l_len.iter().sum::<usize>() + self.u_len.iter().sum::<usize>() - self.n
    }

    /// Cuts `0..n` into at most roughly `n_chunks` contiguous column ranges
    /// of approximately equal estimated fill work (per-column weight:
    /// one unit plus the original column count plus the `L̄` column count).
    /// Deterministic for a fixed `(pattern, n_chunks)`; the chunked result
    /// is independent of the chunking anyway because every column is
    /// computed independently.
    pub fn partition(&self, pattern: &SparsityPattern, n_chunks: usize) -> Vec<Range<usize>> {
        let n = self.n;
        if n == 0 {
            return Vec::new();
        }
        let n_chunks = n_chunks.clamp(1, n);
        let weights: Vec<usize> = (0..n)
            .map(|j| 1 + pattern.col(j).len() + self.l_len[j])
            .collect();
        let total: usize = weights.iter().sum();
        let target = total.div_ceil(n_chunks);
        let mut out = Vec::new();
        let mut start = 0usize;
        let mut acc = 0usize;
        for (j, w) in weights.iter().enumerate() {
            acc += w;
            if acc >= target {
                out.push(start..j + 1);
                start = j + 1;
                acc = 0;
            }
        }
        if start < n {
            out.push(start..n);
        }
        out
    }
}

/// Runs the sequential skeleton pass: the union–find merge loop of
/// [`static_symbolic_factorization`] stripped of all sorting and of `Ū`
/// materialization. Costs `O(|Ū| + nnz)` integer operations and produces a
/// [`FillSkeleton`] from which every filled column can then be computed
/// *independently* (see [`fill_columns`]) — the GSoFa-style reachability
/// formulation: `ū_ij ≠ 0` iff some row `r` with `a_rj ≠ 0` has `i` on its
/// candidate-step chain `first(r), parent(first(r)), …` with `i ≤ j`.
pub fn fill_skeleton(pattern: &SparsityPattern) -> Result<FillSkeleton, SymbolicError> {
    if !pattern.is_square() {
        return Err(SymbolicError::NotSquare);
    }
    let n = pattern.ncols();
    for j in 0..n {
        if !pattern.contains(j, j) {
            return Err(SymbolicError::ZeroOnDiagonal(j));
        }
    }
    let by_rows = pattern.transpose();

    // Union–find over rows, as in the sequential algorithm; classes keep
    // their structures *unsorted* and track the minimum separately.
    let mut uf: Vec<usize> = (0..n).collect();
    fn find(uf: &mut [usize], mut x: usize) -> usize {
        while uf[x] != x {
            uf[x] = uf[uf[x]];
            x = uf[x];
        }
        x
    }

    let mut class_struct: Vec<Vec<usize>> = (0..n).map(|i| by_rows.col(i).to_vec()).collect();
    // `by_rows` columns are sorted, so element 0 is the row minimum.
    let first: Vec<usize> = (0..n).map(|i| class_struct[i][0]).collect();
    let mut class_min: Vec<usize> = first.clone();
    let mut class_rows: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut bucket: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        bucket[first[i]].push(i);
    }

    let mut parent = vec![usize::MAX; n];
    let mut l_len = vec![0usize; n];
    let mut u_len = vec![0usize; n];
    let mut in_union = vec![false; n];
    let mut merged: Vec<usize> = Vec::new();

    for k in 0..n {
        let mut reps: Vec<usize> = Vec::new();
        for cand in std::mem::take(&mut bucket[k]) {
            let r = find(&mut uf, cand);
            if !class_rows[r].is_empty()
                && !class_struct[r].is_empty()
                && class_min[r] == k
                && !reps.contains(&r)
            {
                reps.push(r);
            }
        }
        debug_assert!(
            !reps.is_empty(),
            "zero-free diagonal guarantees a candidate class at step {k}"
        );

        // Trimmed union (columns > k) of the candidate structures, tracking
        // its minimum — no sort needed.
        merged.clear();
        let mut min = usize::MAX;
        for &r in &reps {
            for &c in &class_struct[r] {
                if c > k && !in_union[c] {
                    in_union[c] = true;
                    merged.push(c);
                    min = min.min(c);
                }
            }
        }
        for &c in &merged {
            in_union[c] = false;
        }

        // L̄ column k = all rows in the candidate classes; Ū row k = {k} ∪
        // the trimmed union. Only the counts are recorded — the entries are
        // reconstructed later from `(first, parent)`.
        l_len[k] = reps.iter().map(|&r| class_rows[r].len()).sum();
        u_len[k] = merged.len() + 1;

        // Merge the classes into one; drop row k; re-bucket at the new
        // minimum (recycling the old root structure as the next scratch).
        let root = reps[0];
        for &r in &reps[1..] {
            uf[r] = root;
            let rows = std::mem::take(&mut class_rows[r]);
            class_rows[root].extend(rows);
            class_struct[r] = Vec::new();
        }
        class_rows[root].retain(|&i| i != k);
        if class_rows[root].is_empty() {
            class_struct[root] = Vec::new();
        } else {
            debug_assert!(
                min != usize::MAX,
                "surviving rows must have a diagonal entry ahead"
            );
            parent[k] = min;
            class_min[root] = min;
            std::mem::swap(&mut class_struct[root], &mut merged);
            bucket[min].push(root);
        }
    }

    Ok(FillSkeleton {
        n,
        parent,
        first,
        l_len,
        u_len,
    })
}

/// Reusable per-worker scratch for [`fill_columns`]: a column-stamped mark
/// array, so no clearing between columns (or chunks) is needed.
#[derive(Debug)]
pub struct FillScratch {
    mark: Vec<usize>,
    stamp: usize,
}

impl FillScratch {
    /// Fresh scratch for an order-`n` problem.
    pub fn new(n: usize) -> Self {
        FillScratch {
            mark: vec![usize::MAX; n],
            stamp: 0,
        }
    }
}

/// `Ū` columns of one contiguous column range, flat and **unsorted within
/// each column** (climb discovery order) — the output of [`fill_columns`],
/// consumed by [`assemble_filled`].
///
/// The discovery order depends only on `(pattern, skeleton, column)`, never
/// on the worker or chunk that computed it, so even the raw bytes here are
/// schedule-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillChunk {
    /// The column range this chunk covers.
    pub cols: Range<usize>,
    /// Chunk-local column pointers into `u_idx` (length `cols.len() + 1`).
    pub u_ptr: Vec<usize>,
    /// Concatenated `Ū` column row indices, unsorted within each column.
    pub u_idx: Vec<usize>,
}

/// Computes the `Ū` columns `cols` from the skeleton — the embarrassingly
/// parallel half of the chunked factorization.
///
/// Per column `j`, the `Ū` column is the union of parent-chain climbs
/// `first[r], parent[first[r]], …` truncated at `j`, one climb per
/// structural entry `a_rj`. Climbs stop at the first already-marked node,
/// so the column costs `O(|A_{*j}| + |Ū_{*j}|)`. Nothing is sorted here:
/// [`assemble_filled`] orders both factors with linear counting passes.
pub fn fill_columns(
    pattern: &SparsityPattern,
    skel: &FillSkeleton,
    cols: Range<usize>,
    scratch: &mut FillScratch,
) -> FillChunk {
    assert!(cols.end <= skel.n, "column range out of bounds");
    let mut u_ptr = Vec::with_capacity(cols.len() + 1);
    u_ptr.push(0);
    let mut u_idx: Vec<usize> = Vec::with_capacity(4 * cols.len());
    for j in cols.clone() {
        scratch.stamp += 1;
        let stamp = scratch.stamp;
        for &r in pattern.col(j) {
            let mut x = skel.first[r];
            // `parent` entries are either > x or usize::MAX, so the `x <= j`
            // bound also terminates dead-class chains.
            while x <= j && scratch.mark[x] != stamp {
                scratch.mark[x] = stamp;
                u_idx.push(x);
                x = skel.parent[x];
            }
        }
        u_ptr.push(u_idx.len());
    }
    FillChunk { cols, u_ptr, u_idx }
}

/// Exclusive prefix sum of `lens` as a CSC pointer array.
fn prefix_ptr(lens: &[usize]) -> Vec<usize> {
    let mut ptr = Vec::with_capacity(lens.len() + 1);
    let mut acc = 0usize;
    ptr.push(0);
    for &l in lens {
        acc += l;
        ptr.push(acc);
    }
    ptr
}

/// Splits the destination index range `0..n` of a scatter into at most `t`
/// sub-ranges carrying roughly equal numbers of entries per `ptr`.
/// The ranges tile `0..n` in ascending order (some may be empty).
fn balance_ranges(ptr: &[usize], t: usize) -> Vec<Range<usize>> {
    let n = ptr.len() - 1;
    let nnz = ptr[n];
    let t = t.clamp(1, n.max(1));
    let mut ranges = Vec::with_capacity(t);
    let mut start = 0usize;
    for k in 1..=t {
        let end = if k == t {
            n
        } else {
            // First destination whose cumulative count reaches k/t of nnz.
            ptr.partition_point(|&p| p < nnz * k / t).clamp(start, n)
        };
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Runs a counting scatter with destination-range ownership: the output is
/// split at `ptr` boundaries into one contiguous sub-slice per balanced
/// destination range, and `run(range, out_range)` fills each — on the
/// calling thread when `nthreads <= 1`, on scoped threads otherwise.
///
/// Because every entry's final position is fixed by `ptr` before any thread
/// starts, the assembled output is **position-exact**: bitwise identical
/// for every `nthreads`.
fn scatter_by_dest<F>(ptr: &[usize], out: &mut [usize], nthreads: usize, run: F)
where
    F: Fn(Range<usize>, &mut [usize]) + Sync,
{
    let n = ptr.len() - 1;
    if nthreads <= 1 {
        run(0..n, out);
        return;
    }
    let ranges = balance_ranges(ptr, nthreads);
    std::thread::scope(|s| {
        let mut rest = out;
        for r in ranges {
            let (head, tail) = rest.split_at_mut(ptr[r.end] - ptr[r.start]);
            rest = tail;
            let run = &run;
            s.spawn(move || run(r, head));
        }
    });
}

/// Assembles chunk outputs (which must tile `0..n` in ascending order) into
/// a [`FilledLu`] bitwise identical to the sequential
/// [`static_symbolic_factorization`] result, using up to `nthreads` threads
/// for the scatter passes.
///
/// No comparison sorts anywhere: every CSC pointer array is known exactly
/// from the skeleton's `l_len`/`u_len` and the chunk pointers, and
///
/// * `L̄` rows are **branches** (row `i` = the ascending parent path
///   `first[i] → … → i`), so scanning rows in ascending order while walking
///   each branch scatters `L̄` columns directly in sorted order;
/// * the unsorted `Ū` columns scatter (ascending column scan) into the
///   row-major `Ū`, which therefore comes out sorted, and a second scatter
///   (ascending row scan) back yields the column-compressed `Ū` sorted.
///
/// Each scatter parallelizes by destination-range ownership (see
/// [`scatter_by_dest`]); the output is position-exact, so the result is
/// bitwise independent of `nthreads`, chunking and scheduling — a sorted
/// CSC representation of a set family is unique.
pub fn assemble_filled_threads(
    skel: &FillSkeleton,
    chunks: &[FillChunk],
    nthreads: usize,
) -> Result<FilledLu, SymbolicError> {
    let n = skel.n;
    let mut next = 0usize;
    for ch in chunks {
        assert_eq!(
            ch.cols.start, next,
            "chunks must tile the column range in order"
        );
        assert_eq!(ch.u_ptr.len(), ch.cols.len() + 1, "malformed chunk");
        next = ch.cols.end;
    }
    assert_eq!(next, n, "chunks must cover every column");

    // L̄ columns: scan rows ascending, walk each row's branch, scatter the
    // row index into every branch node's column. Branches ascend (parents
    // exceed children), so a thread owning destinations `[a, b)` can skip
    // rows whose branch starts at or beyond `b` and stop each walk at `b`.
    let l_ptr = prefix_ptr(&skel.l_len);
    let mut l_idx = vec![0usize; l_ptr[n]];
    scatter_by_dest(&l_ptr, &mut l_idx, nthreads, |r, out| {
        let base = l_ptr[r.start];
        let mut cursor: Vec<usize> = l_ptr[r.start..r.end].iter().map(|&p| p - base).collect();
        for i in r.start..n {
            let mut x = skel.first[i];
            if x >= r.end {
                continue;
            }
            loop {
                if x >= r.start {
                    out[cursor[x - r.start]] = i;
                    cursor[x - r.start] += 1;
                }
                if x == i {
                    break;
                }
                x = skel.parent[x];
                debug_assert!(x <= i, "row branch overshot its row");
                if x >= r.end {
                    break;
                }
            }
        }
        debug_assert!((r.start..r.end).all(|j| cursor[j - r.start] == l_ptr[j + 1] - base));
    });

    // Row-major Ū by one scatter of the unsorted chunk columns (ascending
    // column scan → sorted rows).
    let ur_ptr = prefix_ptr(&skel.u_len);
    let mut ur_idx = vec![0usize; ur_ptr[n]];
    scatter_by_dest(&ur_ptr, &mut ur_idx, nthreads, |r, out| {
        let base = ur_ptr[r.start];
        let mut cursor: Vec<usize> = ur_ptr[r.start..r.end].iter().map(|&p| p - base).collect();
        for ch in chunks {
            for (k, j) in ch.cols.clone().enumerate() {
                for &i in &ch.u_idx[ch.u_ptr[k]..ch.u_ptr[k + 1]] {
                    if i >= r.start && i < r.end {
                        out[cursor[i - r.start]] = j;
                        cursor[i - r.start] += 1;
                    }
                }
            }
        }
        debug_assert!((r.start..r.end).all(|i| cursor[i - r.start] == ur_ptr[i + 1] - base));
    });

    // Column-compressed Ū by scattering back (ascending row scan → sorted
    // columns). Rows of the row-major Ū are sorted, so each thread narrows
    // to its destination window by binary search instead of filtering.
    let mut u_col_lens = vec![0usize; n];
    for ch in chunks {
        for (k, j) in ch.cols.clone().enumerate() {
            u_col_lens[j] = ch.u_ptr[k + 1] - ch.u_ptr[k];
        }
    }
    let u_ptr = prefix_ptr(&u_col_lens);
    let mut u_idx = vec![0usize; u_ptr[n]];
    scatter_by_dest(&u_ptr, &mut u_idx, nthreads, |r, out| {
        let base = u_ptr[r.start];
        let mut cursor: Vec<usize> = u_ptr[r.start..r.end].iter().map(|&p| p - base).collect();
        for i in 0..n {
            let row = &ur_idx[ur_ptr[i]..ur_ptr[i + 1]];
            let lo = row.partition_point(|&j| j < r.start);
            let hi = lo + row[lo..].partition_point(|&j| j < r.end);
            for &j in &row[lo..hi] {
                out[cursor[j - r.start]] = i;
                cursor[j - r.start] += 1;
            }
        }
        debug_assert!((r.start..r.end).all(|j| cursor[j - r.start] == u_ptr[j + 1] - base));
    });

    let l = SparsityPattern::from_sorted_parts(n, n, l_ptr, l_idx);
    let u = SparsityPattern::from_sorted_parts(n, n, u_ptr, u_idx);
    let u_rows = SparsityPattern::from_sorted_parts(n, n, ur_ptr, ur_idx);
    Ok(FilledLu { l, u, u_rows })
}

/// Single-threaded [`assemble_filled_threads`].
pub fn assemble_filled(
    skel: &FillSkeleton,
    chunks: &[FillChunk],
) -> Result<FilledLu, SymbolicError> {
    assemble_filled_threads(skel, chunks, 1)
}

/// Sequential driver over the chunked formulation: skeleton pass, then
/// chunks of `chunk_cols` columns in order. Produces output bitwise
/// identical to [`static_symbolic_factorization`]; the parallel driver in
/// `splu-core` schedules the same chunks on the work-stealing executor.
pub fn static_symbolic_chunked(
    pattern: &SparsityPattern,
    chunk_cols: usize,
) -> Result<FilledLu, SymbolicError> {
    let skel = fill_skeleton(pattern)?;
    let n = skel.n();
    let chunk_cols = chunk_cols.max(1);
    let mut scratch = FillScratch::new(n);
    let chunks: Vec<FillChunk> = (0..n)
        .step_by(chunk_cols)
        .map(|s| fill_columns(pattern, &skel, s..(s + chunk_cols).min(n), &mut scratch))
        .collect();
    assemble_filled(&skel, &chunks)
}

/// Brute-force reference implementation on dense boolean matrices, O(n³).
///
/// Used by the test-suite (and available to downstream property tests) to
/// validate the union–find implementation.
pub fn static_symbolic_reference(pattern: &SparsityPattern) -> Result<FilledLu, SymbolicError> {
    if !pattern.is_square() {
        return Err(SymbolicError::NotSquare);
    }
    let n = pattern.ncols();
    for j in 0..n {
        if !pattern.contains(j, j) {
            return Err(SymbolicError::ZeroOnDiagonal(j));
        }
    }
    let mut a = vec![vec![false; n]; n];
    for (i, j) in pattern.entries() {
        a[i][j] = true;
    }
    let mut eliminated = vec![false; n];
    let mut l_entries: Vec<(usize, usize)> = Vec::new();
    let mut u_entries: Vec<(usize, usize)> = Vec::new();
    for k in 0..n {
        let candidates: Vec<usize> = (0..n).filter(|&i| !eliminated[i] && a[i][k]).collect();
        // Union of candidate structures over columns ≥ k.
        let mut union_row = vec![false; n];
        for &i in &candidates {
            for (j, ur) in union_row.iter_mut().enumerate().skip(k) {
                *ur |= a[i][j];
            }
        }
        for (j, &u) in union_row.iter().enumerate().skip(k) {
            if u {
                u_entries.push((k, j));
            }
        }
        for &i in &candidates {
            l_entries.push((i, k));
            a[i][k..n].copy_from_slice(&union_row[k..n]);
        }
        eliminated[k] = true;
        for row in a.iter_mut() {
            row[k] = false;
        }
    }
    let l = SparsityPattern::from_entries(n, n, l_entries)?;
    let u_rows = SparsityPattern::from_entries(n, n, u_entries.iter().map(|&(i, j)| (j, i)))?;
    Ok(FilledLu::from_parts(l, u_rows.transpose()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::SparsityPattern;

    use crate::fixtures::fig1_pattern;
    use splu_matgen::random_pattern;

    #[test]
    fn rejects_bad_inputs() {
        let rect = SparsityPattern::empty(2, 3);
        assert_eq!(
            static_symbolic_factorization(&rect),
            Err(SymbolicError::NotSquare)
        );
        let holed = SparsityPattern::from_entries(2, 2, vec![(0, 0), (0, 1)]).unwrap();
        assert_eq!(
            static_symbolic_factorization(&holed),
            Err(SymbolicError::ZeroOnDiagonal(1))
        );
    }

    #[test]
    fn diagonal_matrix_has_no_fill() {
        let p = SparsityPattern::identity(5);
        let f = static_symbolic_factorization(&p).unwrap();
        assert_eq!(f.l, SparsityPattern::identity(5));
        assert_eq!(f.u, SparsityPattern::identity(5));
        assert_eq!(f.nnz_filled(), 5);
    }

    #[test]
    fn dense_matrix_stays_dense() {
        let n = 4;
        let p =
            SparsityPattern::from_entries(n, n, (0..n).flat_map(|i| (0..n).map(move |j| (i, j))))
                .unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        assert_eq!(f.l.nnz(), n * (n + 1) / 2);
        assert_eq!(f.u.nnz(), n * (n + 1) / 2);
    }

    #[test]
    fn contains_original_pattern() {
        let p = fig1_pattern();
        let f = static_symbolic_factorization(&p).unwrap();
        let filled = f.filled_pattern();
        for (i, j) in p.entries() {
            assert!(filled.contains(i, j), "lost original entry ({i},{j})");
        }
    }

    #[test]
    fn matches_reference_on_fig1() {
        let p = fig1_pattern();
        let fast = static_symbolic_factorization(&p).unwrap();
        let slow = static_symbolic_reference(&p).unwrap();
        assert_eq!(fast.l, slow.l);
        assert_eq!(fast.u, slow.u);
    }

    #[test]
    fn matches_reference_on_random_matrices() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        for n in [1usize, 2, 3, 5, 8, 13, 21] {
            for _ in 0..8 {
                let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
                for _ in 0..(2 * n) {
                    entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
                }
                let p = SparsityPattern::from_entries(n, n, entries).unwrap();
                let fast = static_symbolic_factorization(&p).unwrap();
                let slow = static_symbolic_reference(&p).unwrap();
                assert_eq!(fast.l, slow.l, "L mismatch, n={n}");
                assert_eq!(fast.u, slow.u, "U mismatch, n={n}");
            }
        }
    }

    #[test]
    fn upper_bounds_cholesky_of_ata_is_not_required_but_lu_covers_any_pivoting() {
        // For every pivot order realizable by partial pivoting, the actual
        // fill must be inside (L̄, Ū). We verify on a small matrix by brute
        // force: simulate Gaussian elimination structure for EVERY candidate
        // pivot choice sequence and check containment.
        let p = fig1_pattern();
        let f = static_symbolic_factorization(&p).unwrap();
        let n = p.ncols();
        let mut worklist = vec![{
            let mut a = vec![vec![false; n]; n];
            for (i, j) in p.entries() {
                a[i][j] = true;
            }
            (0usize, a, (0..n).collect::<Vec<usize>>())
        }];
        // (step, current structure, row labels: row_labels[r] = original row)
        // Enumerate every pivot choice (bounded: n=7, candidates small).
        let mut explored = 0usize;
        while let Some((k, a, labels)) = worklist.pop() {
            explored += 1;
            if explored > 5000 {
                break; // combinatorial safety valve; plenty explored already
            }
            if k == n {
                continue;
            }
            let candidates: Vec<usize> = (k..n).filter(|&r| a[r][k]).collect();
            assert!(!candidates.is_empty(), "structurally nonsingular");
            for &piv in &candidates {
                let mut b = a.clone();
                let mut lab = labels.clone();
                b.swap(k, piv);
                lab.swap(k, piv);
                // Row k is now the pivot row: check U row containment.
                for j in k..n {
                    if b[k][j] {
                        assert!(
                            f.u.contains(k, j),
                            "U entry ({k},{j}) outside static structure"
                        );
                    }
                }
                for r in k + 1..n {
                    if b[r][k] {
                        // L entry at (position r) — static L̄ column k must
                        // contain position r.
                        assert!(
                            f.l.contains(r, k),
                            "L entry ({r},{k}) outside static structure"
                        );
                        for j in k + 1..n {
                            if b[k][j] {
                                b[r][j] = true; // fill
                            }
                        }
                    }
                }
                worklist.push((k + 1, b, lab));
            }
        }
        assert!(explored > 100, "exploration should branch");
    }

    #[test]
    fn empty_matrix() {
        let p = SparsityPattern::empty(0, 0);
        let f = static_symbolic_factorization(&p).unwrap();
        assert_eq!(f.n(), 0);
        assert_eq!(f.nnz_filled(), 0);
    }

    #[test]
    fn chunked_is_bitwise_identical_to_sequential() {
        for (n, extra, seed) in [
            (1usize, 0usize, 1u64),
            (2, 2, 2),
            (7, 10, 3),
            (15, 25, 4),
            (25, 60, 5),
            (40, 90, 6),
            (60, 200, 7),
        ] {
            let p = random_pattern(n, extra, seed);
            let seq = static_symbolic_factorization(&p).unwrap();
            for chunk in [1usize, 3, 8, 64] {
                let par = static_symbolic_chunked(&p, chunk).unwrap();
                assert_eq!(
                    par, seq,
                    "chunked mismatch (n={n}, seed={seed}, chunk={chunk})"
                );
            }
        }
        let p = fig1_pattern();
        assert_eq!(
            static_symbolic_chunked(&p, 2).unwrap(),
            static_symbolic_factorization(&p).unwrap()
        );
    }

    #[test]
    fn chunked_matches_dense_reference() {
        for seed in 0..6 {
            let p = random_pattern(18, 40, seed);
            let fast = static_symbolic_chunked(&p, 5).unwrap();
            let slow = static_symbolic_reference(&p).unwrap();
            assert_eq!(fast.l, slow.l, "L mismatch, seed={seed}");
            assert_eq!(fast.u, slow.u, "U mismatch, seed={seed}");
        }
    }

    #[test]
    fn skeleton_parents_equal_eforest_parents() {
        use crate::eforest::EliminationForest;
        for seed in 0..8 {
            let p = random_pattern(22, 50, seed);
            let skel = fill_skeleton(&p).unwrap();
            let f = static_symbolic_factorization(&p).unwrap();
            let forest = EliminationForest::from_filled(&f);
            for j in 0..p.ncols() {
                let skel_parent = match skel.parents()[j] {
                    usize::MAX => None,
                    v => Some(v),
                };
                assert_eq!(skel_parent, forest.parent(j), "node {j}, seed {seed}");
            }
        }
    }

    #[test]
    fn skeleton_rejects_bad_inputs_like_sequential() {
        let rect = SparsityPattern::empty(2, 3);
        assert_eq!(fill_skeleton(&rect).unwrap_err(), SymbolicError::NotSquare);
        let holed = SparsityPattern::from_entries(2, 2, vec![(0, 0), (0, 1)]).unwrap();
        assert_eq!(
            fill_skeleton(&holed).unwrap_err(),
            SymbolicError::ZeroOnDiagonal(1)
        );
        let empty = SparsityPattern::empty(0, 0);
        let f = static_symbolic_chunked(&empty, 4).unwrap();
        assert_eq!(f.n(), 0);
    }

    #[test]
    fn partition_tiles_the_column_range() {
        let p = random_pattern(37, 80, 9);
        let skel = fill_skeleton(&p).unwrap();
        for n_chunks in [1usize, 2, 5, 16, 100] {
            let parts = skel.partition(&p, n_chunks);
            let mut next = 0;
            for r in &parts {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, 37);
            // Identical partitions on repeated calls (determinism).
            assert_eq!(parts, skel.partition(&p, n_chunks));
        }
    }

    #[test]
    fn chunks_are_schedule_independent() {
        // Computing the same column in different chunks / scratches yields
        // the same result — the per-column independence the parallel
        // driver's determinism rests on.
        let p = random_pattern(30, 70, 12);
        let skel = fill_skeleton(&p).unwrap();
        let mut s1 = FillScratch::new(30);
        let mut s2 = FillScratch::new(30);
        let whole = fill_columns(&p, &skel, 0..30, &mut s1);
        for j in 0..30 {
            let single = fill_columns(&p, &skel, j..j + 1, &mut s2);
            // Even the raw (unsorted) climb output bytes match per column.
            assert_eq!(
                single.u_idx,
                whole.u_idx[whole.u_ptr[j]..whole.u_ptr[j + 1]],
                "column {j} differs across chunkings"
            );
        }
    }

    #[test]
    fn assembly_is_bitwise_identical_across_thread_counts() {
        for (n, extra, seed) in [(1usize, 0usize, 1u64), (17, 40, 5), (60, 200, 9)] {
            let p = random_pattern(n, extra, seed);
            let skel = fill_skeleton(&p).unwrap();
            let mut scratch = FillScratch::new(n);
            let chunks: Vec<FillChunk> = (0..n)
                .step_by(7)
                .map(|s| fill_columns(&p, &skel, s..(s + 7).min(n), &mut scratch))
                .collect();
            let seq = assemble_filled(&skel, &chunks).unwrap();
            for t in [2usize, 3, 8, 64] {
                let par = assemble_filled_threads(&skel, &chunks, t).unwrap();
                assert_eq!(seq, par, "n={n} seed={seed} nthreads={t}");
            }
        }
    }

    #[test]
    fn u_row_accessor_agrees_with_column_pattern() {
        let p = fig1_pattern();
        let f = static_symbolic_factorization(&p).unwrap();
        for i in 0..p.ncols() {
            for &j in f.u_row(i) {
                assert!(f.u.contains(i, j));
            }
            let via_cols: Vec<usize> = (0..p.ncols()).filter(|&j| f.u.contains(i, j)).collect();
            assert_eq!(f.u_row(i), &via_cols[..]);
        }
    }
}
