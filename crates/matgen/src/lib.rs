//! Deterministic synthetic analogues of the paper's benchmark matrices.
//!
//! The paper evaluates on seven Harwell–Boeing / Davis-collection matrices
//! (Table 1). Those files cannot be redistributed here, so each is replaced
//! by a generator that reproduces the *application structure* that drives
//! the symbolic and parallel behaviour — grid stencils for the oil-reservoir
//! matrices, a staggered coupled-variable stencil for the linearized
//! Navier–Stokes pair, and a dense-neighbourhood FEM discretization for
//! `goodwin` (see DESIGN.md §5, substitution 1). All generators are
//! deterministic given their seeds.
//!
//! | name     | paper: order / nnz | analogue                                |
//! |----------|--------------------|------------------------------------------|
//! | sherman3 | 5005 / 20033       | 35×11×13 grid, thinned 7-point stencil    |
//! | sherman5 | 3312 / 20793       | 16×23×9 grid, fully unsymmetric pattern   |
//! | lnsp3937 | 3937 / 25407       | 36×36 staggered Navier–Stokes (n = 3960)  |
//! | lns3937  | 3937 / 25407       | same pattern, different values            |
//! | orsreg1  | 2205 / 14133       | 21×21×5 full 7-point reservoir grid       |
//! | saylr4   | 3564 / 22316       | 33×6×18 7-point reservoir grid            |
//! | goodwin  | 7320 / 324772      | 60×61 mesh, 2 dofs, 21-node neighbourhood |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use splu_sparse::{CooMatrix, CscMatrix, SparsityPattern};

/// Knobs for the 3D grid generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridOptions {
    /// Probability that each off-diagonal stencil connection is kept.
    pub connection_prob: f64,
    /// When `false`, the two directions of each connection are kept or
    /// dropped independently (a fully unsymmetric pattern, as in sherman5).
    pub pattern_symmetric: bool,
    /// Strength of the convection term that skews the values unsymmetric.
    pub convection: f64,
    /// Seed for the structural decisions.
    pub pattern_seed: u64,
    /// Seed for the numerical values.
    pub value_seed: u64,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            connection_prob: 1.0,
            pattern_symmetric: true,
            convection: 0.3,
            pattern_seed: 1,
            value_seed: 2,
        }
    }
}

/// 3D 7-point reservoir-style grid operator on an `nx × ny × nz` grid.
///
/// Anisotropic diffusion plus a convection term; the diagonal is made
/// strictly dominant so the matrices are well conditioned (the paper's
/// reservoir matrices are similarly benign).
pub fn grid3d_anisotropic(nx: usize, ny: usize, nz: usize, opts: GridOptions) -> CscMatrix {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);
    let mut pat_rng = SmallRng::seed_from_u64(opts.pattern_seed);
    let mut val_rng = SmallRng::seed_from_u64(opts.value_seed);
    // Direction-dependent permeabilities: vertical transmissibility much
    // smaller, as in layered reservoirs.
    let kdir = [1.0, 1.0, 0.9, 0.9, 0.08, 0.08];
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let keep_pair = |rng: &mut SmallRng| rng.gen_bool(opts.connection_prob.clamp(0.0, 1.0));
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                let mut diag = 0.0_f64;
                // (neighbor, direction id, sign of convection contribution)
                let neighbors: [(Option<usize>, usize, f64); 6] = [
                    (x.checked_sub(1).map(|xm| idx(xm, y, z)), 0, 1.0),
                    ((x + 1 < nx).then(|| idx(x + 1, y, z)), 1, -1.0),
                    (y.checked_sub(1).map(|ym| idx(x, ym, z)), 2, 1.0),
                    ((y + 1 < ny).then(|| idx(x, y + 1, z)), 3, -1.0),
                    (z.checked_sub(1).map(|zm| idx(x, y, zm)), 4, 1.0),
                    ((z + 1 < nz).then(|| idx(x, y, z + 1)), 5, -1.0),
                ];
                for (nb, dir, conv_sign) in neighbors {
                    let Some(j) = nb else { continue };
                    // Symmetric patterns decide each undirected pair once,
                    // via a hash of the (min, max) endpoints, so both
                    // directions agree; unsymmetric patterns decide each
                    // direction independently from the sequential stream.
                    let keep = if opts.pattern_symmetric {
                        pair_kept(opts.pattern_seed, i.min(j), i.max(j), opts.connection_prob)
                    } else {
                        keep_pair(&mut pat_rng)
                    };
                    if !keep {
                        continue;
                    }
                    let k = kdir[dir] * (0.5 + val_rng.gen_range(0.0..1.0));
                    let conv = opts.convection * conv_sign * val_rng.gen_range(0.0..1.0);
                    let off = -k + conv;
                    coo.push(i, j, off);
                    diag += k + conv.abs();
                }
                // Strict dominance margin.
                coo.push(i, i, diag + 1.0 + val_rng.gen_range(0.0..0.5));
            }
        }
    }
    coo.to_csc()
}

/// Deterministic keep/drop decision for the undirected pair `(a, b)`.
fn pair_kept(seed: u64, a: usize, b: usize, prob: f64) -> bool {
    let mut rng = SmallRng::seed_from_u64(
        seed ^ (a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (b as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
    );
    rng.gen_bool(prob.clamp(0.0, 1.0))
}

/// 2D staggered-grid linearized Navier–Stokes operator (the
/// lnsp3937/lns3937 analogue): `u`, `v` velocities on faces, pressure `p`
/// in cells, with convection/diffusion blocks and the pressure-gradient /
/// divergence couplings.
pub fn navier_stokes_2d(cells_x: usize, cells_y: usize, value_seed: u64) -> CscMatrix {
    let nu = (cells_x + 1) * cells_y; // u on vertical faces
    let nv = cells_x * (cells_y + 1); // v on horizontal faces
    let np = cells_x * cells_y; // p in cells
    let n = nu + nv + np;
    let uid = |i: usize, j: usize| i + (cells_x + 1) * j;
    let vid = |i: usize, j: usize| nu + i + cells_x * j;
    let pid = |i: usize, j: usize| nu + nv + i + cells_x * j;
    let mut rng = SmallRng::seed_from_u64(value_seed);
    let mut coo = CooMatrix::with_capacity(n, n, 9 * n);

    // Momentum rows: 5-point convection-diffusion on the velocity grids,
    // plus pressure-gradient coupling.
    for j in 0..cells_y {
        for i in 0..=cells_x {
            let r = uid(i, j);
            let mut diag = 4.0 + rng.gen_range(0.0..1.0);
            let nb = |c: usize, coo: &mut CooMatrix, rng: &mut SmallRng| {
                coo.push(r, c, -1.0 + rng.gen_range(-0.4..0.4));
            };
            if i > 0 {
                nb(uid(i - 1, j), &mut coo, &mut rng);
            }
            if i < cells_x {
                nb(uid(i + 1, j), &mut coo, &mut rng);
            }
            if j > 0 {
                nb(uid(i, j - 1), &mut coo, &mut rng);
            }
            if j + 1 < cells_y {
                nb(uid(i, j + 1), &mut coo, &mut rng);
            }
            // Pressure gradient: cells left/right of the face.
            if i > 0 {
                coo.push(r, pid(i - 1, j), 1.0 + rng.gen_range(0.0..0.2));
                diag += 0.5;
            }
            if i < cells_x {
                coo.push(r, pid(i, j), -1.0 - rng.gen_range(0.0..0.2));
                diag += 0.5;
            }
            coo.push(r, r, diag);
        }
    }
    for j in 0..=cells_y {
        for i in 0..cells_x {
            let r = vid(i, j);
            let mut diag = 4.0 + rng.gen_range(0.0..1.0);
            if i > 0 {
                coo.push(r, vid(i - 1, j), -1.0 + rng.gen_range(-0.4..0.4));
            }
            if i + 1 < cells_x {
                coo.push(r, vid(i + 1, j), -1.0 + rng.gen_range(-0.4..0.4));
            }
            if j > 0 {
                coo.push(r, vid(i, j - 1), -1.0 + rng.gen_range(-0.4..0.4));
            }
            if j < cells_y {
                coo.push(r, vid(i, j + 1), -1.0 + rng.gen_range(-0.4..0.4));
            }
            if j > 0 {
                coo.push(r, pid(i, j - 1), 1.0 + rng.gen_range(0.0..0.2));
                diag += 0.5;
            }
            if j < cells_y {
                coo.push(r, pid(i, j), -1.0 - rng.gen_range(0.0..0.2));
                diag += 0.5;
            }
            coo.push(r, r, diag);
        }
    }
    // Continuity rows: divergence of the four surrounding faces, plus a
    // stabilization diagonal (keeps the matrix nonsingular, as penalty /
    // artificial-compressibility formulations do).
    for j in 0..cells_y {
        for i in 0..cells_x {
            let r = pid(i, j);
            coo.push(r, uid(i, j), -1.0 + rng.gen_range(-0.1..0.1));
            coo.push(r, uid(i + 1, j), 1.0 + rng.gen_range(-0.1..0.1));
            coo.push(r, vid(i, j), -1.0 + rng.gen_range(-0.1..0.1));
            coo.push(r, vid(i, j + 1), 1.0 + rng.gen_range(-0.1..0.1));
            coo.push(r, r, 4.5 + rng.gen_range(0.0..0.5));
        }
    }
    coo.to_csc()
}

/// Unsymmetric 2D FEM-style operator (the `goodwin` analogue): `dofs`
/// unknowns per node on an `nx × ny` node mesh, each node coupled to a
/// 21-node neighbourhood (5×5 square minus its corners), giving the ~44
/// nonzeros/row density of the original.
pub fn fem2d_unsymmetric(nx: usize, ny: usize, dofs: usize, value_seed: u64) -> CscMatrix {
    let nodes = nx * ny;
    let n = nodes * dofs;
    let node = |x: usize, y: usize| x + nx * y;
    let mut rng = SmallRng::seed_from_u64(value_seed);
    let mut coo = CooMatrix::with_capacity(n, n, 21 * dofs * dofs * nodes);
    for y in 0..ny {
        for x in 0..nx {
            let me = node(x, y);
            for dy in -2i64..=2 {
                for dx in -2i64..=2 {
                    // 5×5 neighbourhood minus the four extreme corners.
                    if dx.abs() == 2 && dy.abs() == 2 {
                        continue;
                    }
                    let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                    if xx < 0 || yy < 0 || xx >= nx as i64 || yy >= ny as i64 {
                        continue;
                    }
                    let other = node(xx as usize, yy as usize);
                    let dist = (dx.abs() + dy.abs()) as f64;
                    for di in 0..dofs {
                        for dj in 0..dofs {
                            let r = me * dofs + di;
                            let c = other * dofs + dj;
                            if r == c {
                                coo.push(r, c, 30.0 + rng.gen_range(0.0..5.0));
                            } else {
                                // Unsymmetric advection-like coupling.
                                let v = (1.0 / (1.0 + dist)) * rng.gen_range(-1.0..1.0)
                                    + 0.15 * dx as f64;
                                coo.push(r, c, v);
                            }
                        }
                    }
                }
            }
        }
    }
    coo.to_csc()
}

/// A benchmark matrix: name, application domain, and the matrix itself.
pub struct BenchMatrix {
    /// The original matrix's name.
    pub name: &'static str,
    /// Application domain from the paper's Table 1.
    pub domain: &'static str,
    /// The synthetic analogue.
    pub a: CscMatrix,
}

/// Problem scale: `Full` matches the paper's orders; `Reduced` shrinks each
/// grid for fast tests and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-size matrices (orders 2205–7320).
    Full,
    /// Shrunk variants of the same generators (orders ~100–600).
    Reduced,
}

/// Generates one of the paper's seven benchmark matrices by name.
pub fn paper_matrix(name: &str, scale: Scale) -> Option<CscMatrix> {
    let full = matches!(scale, Scale::Full);
    let m = match name {
        "sherman3" => {
            let (nx, ny, nz) = if full { (35, 11, 13) } else { (8, 5, 4) };
            grid3d_anisotropic(
                nx,
                ny,
                nz,
                GridOptions {
                    connection_prob: 0.5,
                    convection: 0.2,
                    pattern_seed: 33,
                    value_seed: 34,
                    ..GridOptions::default()
                },
            )
        }
        "sherman5" => {
            let (nx, ny, nz) = if full { (16, 23, 9) } else { (6, 7, 3) };
            grid3d_anisotropic(
                nx,
                ny,
                nz,
                GridOptions {
                    connection_prob: 0.9,
                    pattern_symmetric: false,
                    convection: 0.6,
                    pattern_seed: 55,
                    value_seed: 56,
                },
            )
        }
        "lnsp3937" => {
            let c = if full { 36 } else { 9 };
            navier_stokes_2d(c, c, 3937)
        }
        "lns3937" => {
            let c = if full { 36 } else { 9 };
            // Same pattern as lnsp3937, different values — the paper's pair
            // differs the same way.
            navier_stokes_2d(c, c, 3938)
        }
        "orsreg1" => {
            let (nx, ny, nz) = if full { (21, 21, 5) } else { (7, 7, 3) };
            grid3d_anisotropic(
                nx,
                ny,
                nz,
                GridOptions {
                    pattern_seed: 11,
                    value_seed: 12,
                    ..GridOptions::default()
                },
            )
        }
        "saylr4" => {
            let (nx, ny, nz) = if full { (33, 6, 18) } else { (9, 3, 6) };
            grid3d_anisotropic(
                nx,
                ny,
                nz,
                GridOptions {
                    connection_prob: 0.95,
                    pattern_seed: 44,
                    value_seed: 45,
                    ..GridOptions::default()
                },
            )
        }
        "goodwin" => {
            let (nx, ny) = if full { (60, 61) } else { (10, 11) };
            fem2d_unsymmetric(nx, ny, 2, 73)
        }
        _ => return None,
    };
    Some(m)
}

/// The seven benchmark matrices of the paper's Table 1, in table order.
pub fn paper_suite(scale: Scale) -> Vec<BenchMatrix> {
    let spec: [(&'static str, &'static str); 7] = [
        ("sherman3", "oil reservoir modelling"),
        ("sherman5", "oil reservoir modelling"),
        ("lnsp3937", "fluid flow modelling"),
        ("lns3937", "fluid flow modelling"),
        ("orsreg1", "oil reservoir modelling"),
        ("saylr4", "oil reservoir modelling"),
        ("goodwin", "fluid mechanics (FEM)"),
    ];
    spec.iter()
        .map(|&(name, domain)| BenchMatrix {
            name,
            domain,
            a: paper_matrix(name, scale).expect("all suite names are known"),
        })
        .collect()
}

/// A manufactured problem: returns `(x_true, b = A·x_true)` for testing the
/// full solve path.
pub fn manufactured_rhs(a: &CscMatrix, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let x: Vec<f64> = (0..a.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b = a.mat_vec(&x);
    (x, b)
}

/// The 7×7 unsymmetric example of the paper's Figure 1(a) — the shared
/// walkthrough fixture for the symbolic machinery (re-exported as
/// `splu_symbolic::fixtures::fig1_pattern`).
///
/// The figure in the retrieved paper text is partially garbled, so this
/// fixture is a faithful *small unsymmetric matrix with a zero-free
/// diagonal* exercising the same phenomena (a genuine forest with several
/// trees, fill-in, nontrivial postorder) rather than a digit-perfect copy.
pub fn fig1_pattern() -> SparsityPattern {
    let entries = vec![
        (0, 0),
        (0, 2),
        (1, 1),
        (1, 3),
        (2, 0),
        (2, 2),
        (2, 4),
        (3, 1),
        (3, 3),
        (3, 6),
        (4, 4),
        (4, 5),
        (5, 2),
        (5, 5),
        (5, 6),
        (6, 4),
        (6, 6),
    ];
    SparsityPattern::from_entries(7, 7, entries).unwrap()
}

/// The Figure 1 matrix with deterministic nonzero values (diagonally
/// dominant so that no pivoting is strictly required, yet unsymmetric).
pub fn fig1_matrix() -> CscMatrix {
    let p = fig1_pattern();
    let vals: Vec<f64> = p
        .entries()
        .map(|(i, j)| {
            if i == j {
                10.0 + i as f64
            } else {
                1.0 + ((3 * i + 5 * j) % 7) as f64 * 0.25
            }
        })
        .collect();
    CscMatrix::from_pattern_values(p, vals).expect("pattern and values align")
}

/// A small random square pattern with a planted zero-free diagonal plus
/// `extra` uniformly random entries — the structural fuzzing workload of
/// the symbolic test-suites.
pub fn random_pattern(n: usize, extra: usize, seed: u64) -> SparsityPattern {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
    for _ in 0..extra {
        entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
    }
    SparsityPattern::from_entries(n, n, entries).unwrap()
}

/// A small random square matrix over a [`random_pattern`]-style structure:
/// diagonal `base + U[0, 1)`, then `extra` unit-interval off-diagonal
/// triplets (duplicates sum) — the numerical fuzzing workload of the
/// driver test-suites.
pub fn random_diag_dominant(n: usize, extra: usize, seed: u64, base: f64) -> CscMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trips: Vec<(usize, usize, f64)> = (0..n)
        .map(|i| (i, i, base + rng.gen_range(0.0..1.0)))
        .collect();
    for _ in 0..extra {
        trips.push((
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(-1.0..1.0),
        ));
    }
    CscMatrix::from_triplets(n, n, &trips).unwrap()
}

/// A random unsymmetric matrix with a guaranteed nonzero, diagonally
/// dominant diagonal — the generic fuzzing workload used across the
/// test-suites and stress examples.
pub fn random_unsymmetric(n: usize, extra_per_row: usize, seed: u64) -> CscMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (extra_per_row + 1));
    for _ in 0..n * extra_per_row {
        coo.push(
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(-1.0..1.0),
        );
    }
    // Dominant diagonal added last so duplicate sums keep it dominant.
    for i in 0..n {
        coo.push(
            i,
            i,
            2.0 * extra_per_row as f64 + 2.0 + rng.gen_range(0.0..1.0),
        );
    }
    coo.to_csc()
}

/// A banded unsymmetric matrix: half-bandwidths `lower`/`upper`, random
/// values, dominant diagonal. Useful for profile-oriented experiments
/// (RCM behaves very differently from minimum degree here).
pub fn banded(n: usize, lower: usize, upper: usize, seed: u64) -> CscMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (lower + upper + 1));
    for i in 0..n {
        let lo = i.saturating_sub(lower);
        let hi = (i + upper).min(n - 1);
        for j in lo..=hi {
            if i == j {
                coo.push(i, i, (lower + upper) as f64 + 2.0 + rng.gen_range(0.0..1.0));
            } else {
                coo.push(i, j, rng.gen_range(-1.0..1.0));
            }
        }
    }
    coo.to_csc()
}

/// An ill-conditioned pivoting stress matrix: a banded, diagonally dominant
/// operator in which each column listed in `tiny_cols` is reduced to a
/// `tiny` diagonal plus a boosted subdiagonal `a[j+1, j] = 3.0` (no
/// entries above the diagonal, so under no-interchange pivoting the
/// column's upper factor stays numerically zero and the diagonal reaches
/// elimination still equal to `tiny`). Restricted (diagonal-rule) pivoting
/// therefore breaks down at exactly those columns, while the matrix itself
/// stays well conditioned because the large subdiagonal keeps the column
/// far from the span of the others. Used by the breakdown-policy and
/// fault-injection tests: `BreakdownPolicy::Error` must fail at the first
/// tiny column, and `BreakdownPolicy::Perturb` plus iterative refinement
/// must still reach a small residual.
///
/// # Panics
///
/// Panics if any entry of `tiny_cols` is `>= n - 1` (the boosted
/// subdiagonal must exist) or if `tiny_cols` has adjacent columns (the
/// boosted subdiagonal of one tiny column must not be the diagonal row of
/// another).
pub fn tiny_pivot_matrix(n: usize, tiny_cols: &[usize], tiny: f64, seed: u64) -> CscMatrix {
    for &j in tiny_cols {
        assert!(
            j + 1 < n,
            "tiny column {j} needs a subdiagonal row in 0..{n}"
        );
        assert!(
            !tiny_cols.contains(&(j + 1)),
            "tiny columns {j} and {} are adjacent",
            j + 1
        );
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for j in 0..n {
        let is_tiny = tiny_cols.contains(&j);
        let lo = j.saturating_sub(2);
        let hi = (j + 2).min(n - 1);
        for i in lo..=hi {
            let v = if i == j {
                if is_tiny {
                    tiny
                } else {
                    8.0 + rng.gen_range(0.0..1.0)
                }
            } else if is_tiny && i == j + 1 {
                // Boosted subdiagonal: keeps the column well scaled even
                // though its diagonal is negligible.
                3.0
            } else if is_tiny {
                // No other entries: in particular nothing above the
                // diagonal, so Schur updates cannot inflate the tiny pivot.
                continue;
            } else {
                rng.gen_range(-1.0..1.0)
            };
            coo.push(i, j, v);
        }
    }
    coo.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_ordering::{maximum_transversal, StructuralRank};

    #[test]
    fn fig1_fixture_is_unsymmetric_with_zero_free_diagonal() {
        let p = fig1_pattern();
        assert!(p.has_zero_free_diagonal());
        assert_ne!(p, p.transpose());
        let m = fig1_matrix();
        assert_eq!(m.nnz(), p.nnz());
        assert!(m.get(0, 0) >= 10.0);
    }

    #[test]
    fn small_random_generators_are_deterministic_with_planted_diagonals() {
        let p = random_pattern(20, 40, 3);
        assert_eq!(p, random_pattern(20, 40, 3));
        assert!(p.has_zero_free_diagonal());
        let a = random_diag_dominant(20, 60, 5, 3.0);
        assert_eq!(a, random_diag_dominant(20, 60, 5, 3.0));
        // Random duplicates sum onto the planted diagonal, so its exact
        // value floats — but it stays present and far from zero.
        assert!(a.pattern().has_zero_free_diagonal());
        for i in 0..20 {
            assert!(a.get(i, i) >= 2.0, "column {i}: {}", a.get(i, i));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = paper_matrix("orsreg1", Scale::Reduced).unwrap();
        let b = paper_matrix("orsreg1", Scale::Reduced).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn suite_has_seven_members_with_expected_orders() {
        let suite = paper_suite(Scale::Full);
        assert_eq!(suite.len(), 7);
        let orders: Vec<usize> = suite.iter().map(|m| m.a.ncols()).collect();
        assert_eq!(orders, vec![5005, 3312, 3960, 3960, 2205, 3564, 7320]);
        // lnsp/lns share the pattern but not the values.
        assert_eq!(suite[2].a.pattern(), suite[3].a.pattern());
        assert_ne!(suite[2].a.values(), suite[3].a.values());
    }

    #[test]
    fn nnz_counts_are_in_the_right_ballpark() {
        // Within 2x of the paper's Table 1 numbers.
        let targets = [
            ("sherman3", 20033usize),
            ("sherman5", 20793),
            ("lnsp3937", 25407),
            ("orsreg1", 14133),
            ("saylr4", 22316),
            ("goodwin", 324772),
        ];
        for (name, target) in targets {
            let a = paper_matrix(name, Scale::Full).unwrap();
            let nnz = a.nnz();
            assert!(
                nnz * 2 >= target && nnz <= target * 2,
                "{name}: nnz {nnz} vs paper {target}"
            );
        }
    }

    #[test]
    fn all_matrices_are_structurally_nonsingular() {
        for m in paper_suite(Scale::Reduced) {
            match maximum_transversal(m.a.pattern()) {
                StructuralRank::Full(_) => {}
                StructuralRank::Deficient { rank } => {
                    panic!("{} is structurally singular (rank {rank})", m.name)
                }
            }
            assert!(m.a.pattern().has_zero_free_diagonal(), "{}", m.name);
        }
    }

    #[test]
    fn sherman5_pattern_is_unsymmetric() {
        let a = paper_matrix("sherman5", Scale::Reduced).unwrap();
        assert_ne!(a.pattern(), &a.pattern().transpose());
    }

    #[test]
    fn sherman3_symmetric_pattern_option_holds() {
        let a = paper_matrix("sherman3", Scale::Reduced).unwrap();
        // Structurally symmetric (values differ).
        assert_eq!(a.pattern(), &a.pattern().transpose());
    }

    #[test]
    fn manufactured_rhs_matches_matvec() {
        let a = paper_matrix("orsreg1", Scale::Reduced).unwrap();
        let (x, b) = manufactured_rhs(&a, 9);
        let b2 = a.mat_vec(&x);
        assert_eq!(b, b2);
        assert_eq!(x.len(), a.ncols());
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(paper_matrix("nosuch", Scale::Full).is_none());
    }

    #[test]
    fn random_unsymmetric_has_dominant_diagonal() {
        let a = random_unsymmetric(50, 4, 7);
        assert_eq!(a.ncols(), 50);
        for i in 0..50 {
            let (rows, vals) = a.col(i);
            let diag = a.get(i, i);
            let off: f64 = rows
                .iter()
                .zip(vals)
                .filter(|(&r, _)| r != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag.abs() > off, "column {i} not dominant");
        }
        assert_eq!(a, random_unsymmetric(50, 4, 7), "deterministic");
    }

    #[test]
    fn tiny_pivot_matrix_has_tiny_diagonals_and_boosted_subdiagonals() {
        let n = 40;
        let tiny_cols = [7, 19, 31];
        let a = tiny_pivot_matrix(n, &tiny_cols, 1e-30, 11);
        assert_eq!(a.ncols(), n);
        for j in 0..n {
            let d = a.get(j, j);
            if tiny_cols.contains(&j) {
                assert_eq!(d, 1e-30, "column {j}");
                assert_eq!(a.get(j + 1, j), 3.0, "subdiagonal of column {j}");
                let (rows, _) = a.col(j);
                assert_eq!(rows, &[j, j + 1], "tiny column {j} structure");
            } else {
                assert!(d >= 8.0, "column {j} diagonal {d}");
            }
        }
        assert_eq!(
            a,
            tiny_pivot_matrix(n, &tiny_cols, 1e-30, 11),
            "deterministic"
        );
        assert!(a.pattern().has_zero_free_diagonal());
    }

    #[test]
    #[should_panic(expected = "needs a subdiagonal row")]
    fn tiny_pivot_matrix_rejects_last_column() {
        tiny_pivot_matrix(10, &[9], 1e-30, 1);
    }

    #[test]
    fn banded_respects_the_bandwidth() {
        let a = banded(30, 2, 3, 1);
        for (i, j, _) in a.triplets() {
            assert!(j + 2 >= i && i + 3 >= j, "entry ({i},{j}) outside band");
        }
        assert!(a.pattern().has_zero_free_diagonal());
    }
}
