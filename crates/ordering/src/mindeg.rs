//! Minimum-degree fill-reducing ordering.
//!
//! The paper (Section 1) uses "the minimum degree algorithm on `AᵀA`" as its
//! fill-reducing ordering, exactly as the SuperLU family does for the column
//! ordering. [`min_degree`] implements the classical minimum (external)
//! degree algorithm on a symmetric pattern using a quotient graph with
//! element absorption — the George–Liu formulation — augmented with
//! **supervariable merging**: indistinguishable vertices (identical
//! adjacency in the quotient graph) are collapsed and eliminated together,
//! which is what makes the method practical on FEM-style graphs with
//! repeated connectivity (goodwin drops from seconds to tens of
//! milliseconds). [`column_min_degree`] is the convenience wrapper that
//! forms the `AᵀA` pattern first.

use splu_sparse::{Permutation, SparsityPattern};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes a minimum-degree ordering of a **symmetric** square pattern.
///
/// Returns a permutation `p` such that eliminating vertices in the order
/// `p.old_of(0), p.old_of(1), …` keeps fill low. Only the union of the
/// pattern and its transpose is considered, so callers may pass unsymmetric
/// patterns and get the ordering of the symmetrized graph.
///
/// Quotient-graph state per surviving supervariable `i`:
///
/// * `adj[i]` — still-uncovered neighbouring supervariables;
/// * `var_elems[i]` — elements (cliques from past eliminations) touching it;
/// * `weight[i]` — number of original vertices it represents;
/// * `members[i]` — those original vertices.
///
/// Eliminating the minimum-degree supervariable replaces it and all its
/// elements by one new element (element absorption), recomputes the exact
/// weighted external degree of every boundary supervariable, and merges
/// boundary supervariables that became indistinguishable.
pub fn min_degree(pattern: &SparsityPattern) -> Permutation {
    mmd(pattern, false, &mut || true).expect("uncancellable run cannot be cancelled")
}

/// [`min_degree`] with a cancellation callback, polled once per elimination
/// round. Returns `None` when `keep_going` reports `false`.
pub fn min_degree_with(
    pattern: &SparsityPattern,
    keep_going: &mut dyn FnMut() -> bool,
) -> Option<Permutation> {
    mmd(pattern, false, keep_going)
}

/// Multiple-elimination minimum degree: each round eliminates an
/// **independent set** of minimum-degree supervariables instead of a single
/// one, with the exact degree updates deferred to the end of the round.
///
/// This is the parallel-friendly variant of [`min_degree`] (Liu's multiple
/// minimum degree): the eliminations within a round touch disjoint
/// boundaries, so a threaded implementation could process them
/// concurrently, and the deferred update visits each affected vertex once
/// per round rather than once per elimination. The resulting permutation
/// generally **differs** from single elimination but has comparable fill;
/// it is a valid bijection for any input.
pub fn min_degree_multi(pattern: &SparsityPattern) -> Permutation {
    mmd(pattern, true, &mut || true).expect("uncancellable run cannot be cancelled")
}

/// [`min_degree_multi`] with a cancellation callback, polled once per
/// elimination round. Returns `None` when `keep_going` reports `false`.
pub fn min_degree_multi_with(
    pattern: &SparsityPattern,
    keep_going: &mut dyn FnMut() -> bool,
) -> Option<Permutation> {
    mmd(pattern, true, keep_going)
}

/// Shared driver for single and multiple elimination.
///
/// With `multi = false` each round pops exactly one valid minimum-degree
/// candidate and the deferred update degenerates to the classical
/// per-elimination boundary update, so the ordering is identical to the
/// historical single-elimination implementation.
fn mmd(
    pattern: &SparsityPattern,
    multi: bool,
    keep_going: &mut dyn FnMut() -> bool,
) -> Option<Permutation> {
    assert!(pattern.is_square(), "min_degree requires a square pattern");
    let n = pattern.ncols();
    if n == 0 {
        return Some(Permutation::identity(0));
    }
    let sym = pattern.union(&pattern.transpose());

    let mut adj: Vec<Vec<usize>> = (0..n)
        .map(|j| sym.col(j).iter().copied().filter(|&i| i != j).collect())
        .collect();
    let mut elem_bound: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut var_elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut alive = vec![true; n]; // supervariable still in the graph
    let mut absorbed = vec![false; n]; // per element id
    let mut weight = vec![1usize; n];
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    // Weighted external degree (counts original vertices, not
    // supervariables).
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|i| Reverse((degree[i], i))).collect();
    let mut order = Vec::with_capacity(n);
    let mut mark = vec![usize::MAX; n];
    let mut stamp = 0usize;

    // Batch-selection scratch (multi mode).
    let mut sel_mark = vec![false; n]; // vertex chosen for this round
    let mut elem_sel = vec![false; n]; // element adjacent to a chosen vertex
                                       // Union of round boundaries for the deferred degree update.
    let mut touched: Vec<usize> = Vec::new();
    let mut tmark = vec![usize::MAX; n];
    let mut tstamp = 0usize;

    while order.len() < n {
        if !keep_going() {
            return None;
        }

        // Select this round's batch: the first valid minimum-degree
        // candidate, plus (in multi mode) every further candidate of the
        // same degree that is independent of the ones already chosen —
        // no direct edge to a chosen vertex, no shared element.
        let mut batch: Vec<usize> = Vec::new();
        let mut marked_elems: Vec<usize> = Vec::new();
        let d_min = loop {
            let Reverse((d, cand)) = heap.pop().expect("heap exhausted before all eliminated");
            if alive[cand] && d == degree[cand] {
                batch.push(cand);
                break d;
            }
        };
        if multi {
            sel_mark[batch[0]] = true;
            for &e in &var_elems[batch[0]] {
                if !absorbed[e] && !elem_sel[e] {
                    elem_sel[e] = true;
                    marked_elems.push(e);
                }
            }
            let mut rejected: Vec<usize> = Vec::new();
            while let Some(&Reverse((d, cand))) = heap.peek() {
                if d > d_min {
                    break;
                }
                heap.pop();
                if !alive[cand] || d != degree[cand] {
                    continue; // stale entry
                }
                let independent = adj[cand].iter().all(|&v| !sel_mark[v])
                    && var_elems[cand].iter().all(|&e| absorbed[e] || !elem_sel[e]);
                if independent {
                    sel_mark[cand] = true;
                    for &e in &var_elems[cand] {
                        if !absorbed[e] && !elem_sel[e] {
                            elem_sel[e] = true;
                            marked_elems.push(e);
                        }
                    }
                    batch.push(cand);
                } else {
                    rejected.push(cand);
                }
            }
            for cand in rejected {
                heap.push(Reverse((degree[cand], cand)));
            }
            for &p in &batch {
                sel_mark[p] = false;
            }
            for &e in &marked_elems {
                elem_sel[e] = false;
            }
        }

        // Eliminate the batch. Members are pairwise non-adjacent, so each
        // elimination leaves the others' structures and degrees untouched.
        tstamp += 1;
        touched.clear();
        for &p in &batch {
            alive[p] = false;
            order.extend_from_slice(&members[p]);
            members[p] = Vec::new();

            // Form the new element boundary L_p.
            stamp += 1;
            let mut boundary: Vec<usize> = Vec::new();
            for &i in &adj[p] {
                if alive[i] && mark[i] != stamp {
                    mark[i] = stamp;
                    boundary.push(i);
                }
            }
            for &e in &var_elems[p] {
                if absorbed[e] {
                    continue;
                }
                for &i in &elem_bound[e] {
                    if alive[i] && mark[i] != stamp {
                        mark[i] = stamp;
                        boundary.push(i);
                    }
                }
                absorbed[e] = true;
                elem_bound[e] = Vec::new();
            }
            adj[p] = Vec::new();
            var_elems[p] = Vec::new();

            // Update boundary adjacency: drop covered edges and absorbed
            // elements, register the new element.
            for &i in &boundary {
                adj[i].retain(|&v| alive[v] && mark[v] != stamp);
                var_elems[i].retain(|&e| !absorbed[e]);
                var_elems[i].push(p);
            }
            elem_bound[p] = boundary.clone();

            // Supervariable detection: bucket boundary variables by a cheap
            // hash of their quotient adjacency; verify and merge equal ones.
            if boundary.len() > 1 {
                detect_and_merge(
                    &boundary,
                    &mut adj,
                    &mut var_elems,
                    &mut elem_bound,
                    &mut alive,
                    &mut weight,
                    &mut members,
                );
            }

            for &i in &boundary {
                if alive[i] && tmark[i] != tstamp {
                    tmark[i] = tstamp;
                    touched.push(i);
                }
            }
        }

        // Deferred exact weighted external degree over the union of the
        // round's boundaries (each affected vertex once per round).
        for idx in 0..touched.len() {
            let i = touched[idx];
            if !alive[i] {
                continue; // merged away
            }
            stamp += 1;
            mark[i] = stamp;
            let mut d = 0usize;
            for &v in &adj[i] {
                if alive[v] && mark[v] != stamp {
                    mark[v] = stamp;
                    d += weight[v];
                }
            }
            for &e in &var_elems[i] {
                for &v in &elem_bound[e] {
                    if alive[v] && mark[v] != stamp {
                        mark[v] = stamp;
                        d += weight[v];
                    }
                }
            }
            degree[i] = d;
            heap.push(Reverse((d, i)));
        }
    }

    Some(Permutation::from_vec(order).expect("elimination order is a bijection"))
}

/// Detects indistinguishable supervariables on a freshly updated boundary
/// and merges them (second into first), transferring weight and members.
///
/// Two boundary variables are indistinguishable when their quotient-graph
/// adjacency matches exactly: same surviving `adj` sets (ignoring each
/// other) and same element lists. Both lists are small after the boundary
/// update, so sorting them for comparison is cheap.
#[allow(clippy::too_many_arguments)]
fn detect_and_merge(
    boundary: &[usize],
    adj: &mut [Vec<usize>],
    var_elems: &mut [Vec<usize>],
    elem_bound: &mut [Vec<usize>],
    alive: &mut [bool],
    weight: &mut [usize],
    members: &mut [Vec<usize>],
) {
    use std::collections::HashMap;
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for &i in boundary {
        if !alive[i] {
            continue;
        }
        adj[i].sort_unstable();
        var_elems[i].sort_unstable();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &v in &adj[i] {
            h ^= (v as u64).wrapping_mul(0x1000_0000_01b3);
            h = h.rotate_left(13);
        }
        for &e in &var_elems[i] {
            h ^= (e as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h = h.rotate_left(7);
        }
        buckets.entry(h).or_default().push(i);
    }
    for group in buckets.values() {
        if group.len() < 2 {
            continue;
        }
        for a in 0..group.len() {
            let i = group[a];
            if !alive[i] {
                continue;
            }
            for &j in &group[a + 1..] {
                if !alive[j] {
                    continue;
                }
                if var_elems[i] != var_elems[j] {
                    continue;
                }
                // adj sets must match modulo the pair itself.
                let eq = {
                    let ai: Vec<usize> = adj[i].iter().copied().filter(|&v| v != j).collect();
                    let aj: Vec<usize> = adj[j].iter().copied().filter(|&v| v != i).collect();
                    ai == aj
                };
                if !eq {
                    continue;
                }
                // Merge j into i.
                alive[j] = false;
                weight[i] += weight[j];
                let m = std::mem::take(&mut members[j]);
                members[i].extend(m);
                adj[j] = Vec::new();
                var_elems[j] = Vec::new();
                adj[i].retain(|&v| v != j);
                // Dead entries in element boundaries and adjacency lists are
                // filtered lazily through the `alive` checks; elem_bound is
                // not rewritten here.
                let _ = &elem_bound;
            }
        }
    }
}

/// Minimum-degree ordering of the `AᵀA` pattern of a (generally rectangular
/// or unsymmetric) matrix — the paper's fill-reducing column ordering.
pub fn column_min_degree(pattern: &SparsityPattern) -> Permutation {
    min_degree(&pattern.ata())
}

/// [`column_min_degree`] with a cancellation callback (see
/// [`min_degree_with`]).
pub fn column_min_degree_with(
    pattern: &SparsityPattern,
    keep_going: &mut dyn FnMut() -> bool,
) -> Option<Permutation> {
    if !keep_going() {
        return None;
    }
    min_degree_with(&pattern.ata(), keep_going)
}

/// Multiple-elimination minimum-degree ordering of the `AᵀA` pattern (see
/// [`min_degree_multi`]).
pub fn column_min_degree_multi(pattern: &SparsityPattern) -> Permutation {
    min_degree_multi(&pattern.ata())
}

/// [`column_min_degree_multi`] with a cancellation callback.
pub fn column_min_degree_multi_with(
    pattern: &SparsityPattern,
    keep_going: &mut dyn FnMut() -> bool,
) -> Option<Permutation> {
    if !keep_going() {
        return None;
    }
    min_degree_multi_with(&pattern.ata(), keep_going)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::SparsityPattern;

    /// Counts Cholesky fill of a symmetric pattern eliminated in the given
    /// order (brute-force reference: dense boolean elimination).
    fn fill_count(pattern: &SparsityPattern, perm: &Permutation) -> usize {
        let n = pattern.ncols();
        let sym = pattern.union(&pattern.transpose());
        let b = sym.permuted(perm, perm);
        let mut m = vec![vec![false; n]; n];
        for (i, j) in b.entries() {
            m[i][j] = true;
            m[j][i] = true;
        }
        let mut fill = 0;
        for k in 0..n {
            for i in k + 1..n {
                if m[i][k] {
                    for j in k + 1..n {
                        if m[k][j] && !m[i][j] {
                            m[i][j] = true;
                            fill += 1;
                        }
                    }
                }
            }
        }
        fill
    }

    fn path_pattern(n: usize) -> SparsityPattern {
        let mut e = Vec::new();
        for i in 0..n {
            e.push((i, i));
            if i + 1 < n {
                e.push((i, i + 1));
                e.push((i + 1, i));
            }
        }
        SparsityPattern::from_entries(n, n, e).unwrap()
    }

    fn star_pattern(n: usize) -> SparsityPattern {
        let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for i in 1..n {
            e.push((0, i));
            e.push((i, 0));
        }
        SparsityPattern::from_entries(n, n, e).unwrap()
    }

    fn grid_pattern(nx: usize, ny: usize) -> SparsityPattern {
        let n = nx * ny;
        let id = |x: usize, y: usize| x + y * nx;
        let mut e = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                let v = id(x, y);
                e.push((v, v));
                if x + 1 < nx {
                    e.push((v, id(x + 1, y)));
                    e.push((id(x + 1, y), v));
                }
                if y + 1 < ny {
                    e.push((v, id(x, y + 1)));
                    e.push((id(x, y + 1), v));
                }
            }
        }
        SparsityPattern::from_entries(n, n, e).unwrap()
    }

    #[test]
    fn star_center_is_eliminated_last() {
        let p = star_pattern(8);
        let perm = min_degree(&p);
        // Leaves have degree 1, the hub degree 7: a leaf (or merged leaf
        // supervariable) is eliminated first and the elimination is
        // fill-free.
        assert_ne!(perm.old_of(0), 0);
        assert_eq!(fill_count(&p, &perm), 0);
    }

    #[test]
    fn path_graph_has_no_fill_under_md() {
        let p = path_pattern(12);
        let perm = min_degree(&p);
        assert_eq!(fill_count(&p, &perm), 0);
    }

    #[test]
    fn grid_fill_is_no_worse_than_natural() {
        let p = grid_pattern(6, 6);
        let md = min_degree(&p);
        let natural = Permutation::identity(36);
        let f_md = fill_count(&p, &md);
        let f_nat = fill_count(&p, &natural);
        assert!(
            f_md < f_nat,
            "minimum degree should beat natural on a grid: {f_md} vs {f_nat}"
        );
    }

    #[test]
    fn supervariable_merging_preserves_quality_on_duplicated_graphs() {
        // Two dofs per node with identical connectivity: the classic
        // supervariable case. Fill must stay comparable to the grid case.
        let nx = 5;
        let ny = 5;
        let base = grid_pattern(nx, ny);
        let n = nx * ny;
        let mut e = Vec::new();
        for (i, j) in base.entries() {
            for di in 0..2usize {
                for dj in 0..2usize {
                    e.push((2 * i + di, 2 * j + dj));
                }
            }
        }
        let p = SparsityPattern::from_entries(2 * n, 2 * n, e).unwrap();
        let perm = min_degree(&p);
        assert_eq!(perm.len(), 2 * n);
        // Sanity: the fill of the doubled problem stays within a small
        // factor of 4x the single-dof fill (2x2 blocks ~ 4x entries).
        let single = fill_count(&base, &min_degree(&base));
        let doubled = fill_count(&p, &perm);
        assert!(
            doubled <= 8 * single.max(8),
            "supervariables degraded quality: {doubled} vs base {single}"
        );
    }

    #[test]
    fn ordering_is_a_permutation_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 10, 40, 80] {
            let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            for _ in 0..4 * n {
                let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
                e.push((a, b));
                e.push((b, a));
            }
            let p = SparsityPattern::from_entries(n, n, e).unwrap();
            let perm = min_degree(&p);
            assert_eq!(perm.len(), n);
            let _ = fill_count(&p, &perm);
        }
    }

    #[test]
    fn column_min_degree_runs_on_unsymmetric_input() {
        let n = 10;
        let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for i in 0..n - 1 {
            e.push((i, i + 1));
        }
        let p = SparsityPattern::from_entries(n, n, e).unwrap();
        let perm = column_min_degree(&p);
        assert_eq!(perm.len(), n);
    }

    #[test]
    fn empty_and_singleton() {
        let p0 = SparsityPattern::empty(0, 0);
        assert_eq!(min_degree(&p0).len(), 0);
        let p1 = SparsityPattern::identity(1);
        assert_eq!(min_degree(&p1).as_slice(), &[0]);
    }

    #[test]
    fn multi_orderings_are_bijections_with_comparable_fill() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(21);
        let mut cases: Vec<SparsityPattern> = vec![
            path_pattern(12),
            star_pattern(8),
            grid_pattern(6, 6),
            SparsityPattern::identity(1),
        ];
        for n in [10usize, 40, 80] {
            let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            for _ in 0..4 * n {
                let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
                e.push((a, b));
                e.push((b, a));
            }
            cases.push(SparsityPattern::from_entries(n, n, e).unwrap());
        }
        for p in &cases {
            let n = p.ncols();
            let multi = min_degree_multi(p);
            assert_eq!(multi.len(), n); // Permutation::from_vec enforced bijection
            let f_single = fill_count(p, &min_degree(p));
            let f_multi = fill_count(p, &multi);
            // Multiple elimination may differ but must stay in the same
            // quality class (the 1.25x bound from the suite-level test,
            // with an additive slack for tiny fills).
            assert!(
                4 * f_multi <= 5 * f_single + 40,
                "n={n}: multi fill {f_multi} vs single {f_single}"
            );
        }
    }

    #[test]
    fn multi_batches_independent_vertices() {
        // On a path, all interior vertices have degree 2 and alternate ones
        // are independent; multiple elimination must still produce a valid
        // fill-free ordering.
        let p = path_pattern(30);
        let perm = min_degree_multi(&p);
        assert_eq!(fill_count(&p, &perm), 0);
    }

    #[test]
    fn cancellation_stops_the_ordering() {
        let p = grid_pattern(6, 6);
        assert!(min_degree_with(&p, &mut || true).is_some());
        assert!(min_degree_with(&p, &mut || false).is_none());
        assert!(min_degree_multi_with(&p, &mut || false).is_none());
        assert!(column_min_degree_with(&p, &mut || false).is_none());
        assert!(column_min_degree_multi_with(&p, &mut || false).is_none());
        // Cancel mid-run: allow a few rounds, then stop.
        let mut budget = 3usize;
        let got = min_degree_with(&p, &mut || {
            budget = budget.saturating_sub(1);
            budget > 0
        });
        assert!(got.is_none());
    }

    #[test]
    fn column_min_degree_multi_runs_on_unsymmetric_input() {
        let n = 10;
        let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for i in 0..n - 1 {
            e.push((i, i + 1));
        }
        let p = SparsityPattern::from_entries(n, n, e).unwrap();
        assert_eq!(column_min_degree_multi(&p).len(), n);
    }

    #[test]
    fn complete_graph_collapses_to_supervariables() {
        // In K_n every vertex is indistinguishable after the first
        // elimination; the ordering must still enumerate all vertices.
        let n = 12;
        let p =
            SparsityPattern::from_entries(n, n, (0..n).flat_map(|i| (0..n).map(move |j| (i, j))))
                .unwrap();
        let perm = min_degree(&p);
        assert_eq!(perm.len(), n);
        assert_eq!(fill_count(&p, &perm), 0); // already complete
    }
}
