//! Minimum-degree fill-reducing ordering.
//!
//! The paper (Section 1) uses "the minimum degree algorithm on `AᵀA`" as its
//! fill-reducing ordering, exactly as the SuperLU family does for the column
//! ordering. [`min_degree`] implements the classical minimum (external)
//! degree algorithm on a symmetric pattern using a quotient graph with
//! element absorption — the George–Liu formulation — augmented with
//! **supervariable merging**: indistinguishable vertices (identical
//! adjacency in the quotient graph) are collapsed and eliminated together,
//! which is what makes the method practical on FEM-style graphs with
//! repeated connectivity (goodwin drops from seconds to tens of
//! milliseconds). [`column_min_degree`] is the convenience wrapper that
//! forms the `AᵀA` pattern first.

use splu_sparse::{Permutation, SparsityPattern};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes a minimum-degree ordering of a **symmetric** square pattern.
///
/// Returns a permutation `p` such that eliminating vertices in the order
/// `p.old_of(0), p.old_of(1), …` keeps fill low. Only the union of the
/// pattern and its transpose is considered, so callers may pass unsymmetric
/// patterns and get the ordering of the symmetrized graph.
///
/// Quotient-graph state per surviving supervariable `i`:
///
/// * `adj[i]` — still-uncovered neighbouring supervariables;
/// * `var_elems[i]` — elements (cliques from past eliminations) touching it;
/// * `weight[i]` — number of original vertices it represents;
/// * `members[i]` — those original vertices.
///
/// Eliminating the minimum-degree supervariable replaces it and all its
/// elements by one new element (element absorption), recomputes the exact
/// weighted external degree of every boundary supervariable, and merges
/// boundary supervariables that became indistinguishable.
pub fn min_degree(pattern: &SparsityPattern) -> Permutation {
    assert!(pattern.is_square(), "min_degree requires a square pattern");
    let n = pattern.ncols();
    if n == 0 {
        return Permutation::identity(0);
    }
    let sym = pattern.union(&pattern.transpose());

    let mut adj: Vec<Vec<usize>> = (0..n)
        .map(|j| sym.col(j).iter().copied().filter(|&i| i != j).collect())
        .collect();
    let mut elem_bound: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut var_elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut alive = vec![true; n]; // supervariable still in the graph
    let mut absorbed = vec![false; n]; // per element id
    let mut weight = vec![1usize; n];
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    // Weighted external degree (counts original vertices, not
    // supervariables).
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|i| Reverse((degree[i], i))).collect();
    let mut order = Vec::with_capacity(n);
    let mut mark = vec![usize::MAX; n];
    let mut stamp = 0usize;

    while order.len() < n {
        let p = loop {
            let Reverse((d, cand)) = heap.pop().expect("heap exhausted before all eliminated");
            if alive[cand] && d == degree[cand] {
                break cand;
            }
        };
        alive[p] = false;
        order.extend_from_slice(&members[p]);
        members[p] = Vec::new();

        // Form the new element boundary L_p.
        stamp += 1;
        let mut boundary: Vec<usize> = Vec::new();
        for &i in &adj[p] {
            if alive[i] && mark[i] != stamp {
                mark[i] = stamp;
                boundary.push(i);
            }
        }
        for &e in &var_elems[p] {
            if absorbed[e] {
                continue;
            }
            for &i in &elem_bound[e] {
                if alive[i] && mark[i] != stamp {
                    mark[i] = stamp;
                    boundary.push(i);
                }
            }
            absorbed[e] = true;
            elem_bound[e] = Vec::new();
        }
        adj[p] = Vec::new();
        var_elems[p] = Vec::new();

        // Update boundary adjacency: drop covered edges and absorbed
        // elements, register the new element.
        for &i in &boundary {
            adj[i].retain(|&v| alive[v] && mark[v] != stamp);
            var_elems[i].retain(|&e| !absorbed[e]);
            var_elems[i].push(p);
        }
        elem_bound[p] = boundary.clone();

        // Supervariable detection: bucket boundary variables by a cheap
        // hash of their quotient adjacency; verify and merge equal ones.
        if boundary.len() > 1 {
            detect_and_merge(
                &boundary,
                &mut adj,
                &mut var_elems,
                &mut elem_bound,
                &mut alive,
                &mut weight,
                &mut members,
            );
        }

        // Exact weighted external degree for the (possibly shrunk)
        // boundary.
        for &i in &boundary {
            if !alive[i] {
                continue; // merged away
            }
            stamp += 1;
            mark[i] = stamp;
            let mut d = 0usize;
            for &v in &adj[i] {
                if alive[v] && mark[v] != stamp {
                    mark[v] = stamp;
                    d += weight[v];
                }
            }
            for &e in &var_elems[i] {
                for &v in &elem_bound[e] {
                    if alive[v] && mark[v] != stamp {
                        mark[v] = stamp;
                        d += weight[v];
                    }
                }
            }
            degree[i] = d;
            heap.push(Reverse((d, i)));
        }
    }

    Permutation::from_vec(order).expect("elimination order is a bijection")
}

/// Detects indistinguishable supervariables on a freshly updated boundary
/// and merges them (second into first), transferring weight and members.
///
/// Two boundary variables are indistinguishable when their quotient-graph
/// adjacency matches exactly: same surviving `adj` sets (ignoring each
/// other) and same element lists. Both lists are small after the boundary
/// update, so sorting them for comparison is cheap.
#[allow(clippy::too_many_arguments)]
fn detect_and_merge(
    boundary: &[usize],
    adj: &mut [Vec<usize>],
    var_elems: &mut [Vec<usize>],
    elem_bound: &mut [Vec<usize>],
    alive: &mut [bool],
    weight: &mut [usize],
    members: &mut [Vec<usize>],
) {
    use std::collections::HashMap;
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for &i in boundary {
        if !alive[i] {
            continue;
        }
        adj[i].sort_unstable();
        var_elems[i].sort_unstable();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &v in &adj[i] {
            h ^= (v as u64).wrapping_mul(0x1000_0000_01b3);
            h = h.rotate_left(13);
        }
        for &e in &var_elems[i] {
            h ^= (e as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h = h.rotate_left(7);
        }
        buckets.entry(h).or_default().push(i);
    }
    for group in buckets.values() {
        if group.len() < 2 {
            continue;
        }
        for a in 0..group.len() {
            let i = group[a];
            if !alive[i] {
                continue;
            }
            for &j in &group[a + 1..] {
                if !alive[j] {
                    continue;
                }
                if var_elems[i] != var_elems[j] {
                    continue;
                }
                // adj sets must match modulo the pair itself.
                let eq = {
                    let ai: Vec<usize> = adj[i].iter().copied().filter(|&v| v != j).collect();
                    let aj: Vec<usize> = adj[j].iter().copied().filter(|&v| v != i).collect();
                    ai == aj
                };
                if !eq {
                    continue;
                }
                // Merge j into i.
                alive[j] = false;
                weight[i] += weight[j];
                let m = std::mem::take(&mut members[j]);
                members[i].extend(m);
                adj[j] = Vec::new();
                var_elems[j] = Vec::new();
                adj[i].retain(|&v| v != j);
                // Dead entries in element boundaries and adjacency lists are
                // filtered lazily through the `alive` checks; elem_bound is
                // not rewritten here.
                let _ = &elem_bound;
            }
        }
    }
}

/// Minimum-degree ordering of the `AᵀA` pattern of a (generally rectangular
/// or unsymmetric) matrix — the paper's fill-reducing column ordering.
pub fn column_min_degree(pattern: &SparsityPattern) -> Permutation {
    min_degree(&pattern.ata())
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::SparsityPattern;

    /// Counts Cholesky fill of a symmetric pattern eliminated in the given
    /// order (brute-force reference: dense boolean elimination).
    fn fill_count(pattern: &SparsityPattern, perm: &Permutation) -> usize {
        let n = pattern.ncols();
        let sym = pattern.union(&pattern.transpose());
        let b = sym.permuted(perm, perm);
        let mut m = vec![vec![false; n]; n];
        for (i, j) in b.entries() {
            m[i][j] = true;
            m[j][i] = true;
        }
        let mut fill = 0;
        for k in 0..n {
            for i in k + 1..n {
                if m[i][k] {
                    for j in k + 1..n {
                        if m[k][j] && !m[i][j] {
                            m[i][j] = true;
                            fill += 1;
                        }
                    }
                }
            }
        }
        fill
    }

    fn path_pattern(n: usize) -> SparsityPattern {
        let mut e = Vec::new();
        for i in 0..n {
            e.push((i, i));
            if i + 1 < n {
                e.push((i, i + 1));
                e.push((i + 1, i));
            }
        }
        SparsityPattern::from_entries(n, n, e).unwrap()
    }

    fn star_pattern(n: usize) -> SparsityPattern {
        let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for i in 1..n {
            e.push((0, i));
            e.push((i, 0));
        }
        SparsityPattern::from_entries(n, n, e).unwrap()
    }

    fn grid_pattern(nx: usize, ny: usize) -> SparsityPattern {
        let n = nx * ny;
        let id = |x: usize, y: usize| x + y * nx;
        let mut e = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                let v = id(x, y);
                e.push((v, v));
                if x + 1 < nx {
                    e.push((v, id(x + 1, y)));
                    e.push((id(x + 1, y), v));
                }
                if y + 1 < ny {
                    e.push((v, id(x, y + 1)));
                    e.push((id(x, y + 1), v));
                }
            }
        }
        SparsityPattern::from_entries(n, n, e).unwrap()
    }

    #[test]
    fn star_center_is_eliminated_last() {
        let p = star_pattern(8);
        let perm = min_degree(&p);
        // Leaves have degree 1, the hub degree 7: a leaf (or merged leaf
        // supervariable) is eliminated first and the elimination is
        // fill-free.
        assert_ne!(perm.old_of(0), 0);
        assert_eq!(fill_count(&p, &perm), 0);
    }

    #[test]
    fn path_graph_has_no_fill_under_md() {
        let p = path_pattern(12);
        let perm = min_degree(&p);
        assert_eq!(fill_count(&p, &perm), 0);
    }

    #[test]
    fn grid_fill_is_no_worse_than_natural() {
        let p = grid_pattern(6, 6);
        let md = min_degree(&p);
        let natural = Permutation::identity(36);
        let f_md = fill_count(&p, &md);
        let f_nat = fill_count(&p, &natural);
        assert!(
            f_md < f_nat,
            "minimum degree should beat natural on a grid: {f_md} vs {f_nat}"
        );
    }

    #[test]
    fn supervariable_merging_preserves_quality_on_duplicated_graphs() {
        // Two dofs per node with identical connectivity: the classic
        // supervariable case. Fill must stay comparable to the grid case.
        let nx = 5;
        let ny = 5;
        let base = grid_pattern(nx, ny);
        let n = nx * ny;
        let mut e = Vec::new();
        for (i, j) in base.entries() {
            for di in 0..2usize {
                for dj in 0..2usize {
                    e.push((2 * i + di, 2 * j + dj));
                }
            }
        }
        let p = SparsityPattern::from_entries(2 * n, 2 * n, e).unwrap();
        let perm = min_degree(&p);
        assert_eq!(perm.len(), 2 * n);
        // Sanity: the fill of the doubled problem stays within a small
        // factor of 4x the single-dof fill (2x2 blocks ~ 4x entries).
        let single = fill_count(&base, &min_degree(&base));
        let doubled = fill_count(&p, &perm);
        assert!(
            doubled <= 8 * single.max(8),
            "supervariables degraded quality: {doubled} vs base {single}"
        );
    }

    #[test]
    fn ordering_is_a_permutation_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 10, 40, 80] {
            let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            for _ in 0..4 * n {
                let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
                e.push((a, b));
                e.push((b, a));
            }
            let p = SparsityPattern::from_entries(n, n, e).unwrap();
            let perm = min_degree(&p);
            assert_eq!(perm.len(), n);
            let _ = fill_count(&p, &perm);
        }
    }

    #[test]
    fn column_min_degree_runs_on_unsymmetric_input() {
        let n = 10;
        let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for i in 0..n - 1 {
            e.push((i, i + 1));
        }
        let p = SparsityPattern::from_entries(n, n, e).unwrap();
        let perm = column_min_degree(&p);
        assert_eq!(perm.len(), n);
    }

    #[test]
    fn empty_and_singleton() {
        let p0 = SparsityPattern::empty(0, 0);
        assert_eq!(min_degree(&p0).len(), 0);
        let p1 = SparsityPattern::identity(1);
        assert_eq!(min_degree(&p1).as_slice(), &[0]);
    }

    #[test]
    fn complete_graph_collapses_to_supervariables() {
        // In K_n every vertex is indistinguishable after the first
        // elimination; the ordering must still enumerate all vertices.
        let n = 12;
        let p =
            SparsityPattern::from_entries(n, n, (0..n).flat_map(|i| (0..n).map(move |j| (i, j))))
                .unwrap();
        let perm = min_degree(&p);
        assert_eq!(perm.len(), n);
        assert_eq!(fill_count(&p, &perm), 0); // already complete
    }
}
