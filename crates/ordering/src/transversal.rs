//! Maximum transversal: a row permutation giving a zero-free diagonal.
//!
//! Implements Duff's MC21 algorithm (I. S. Duff, *On algorithms for obtaining
//! a maximum transversal*, ACM TOMS 7, 1981 — reference \[3\] of the paper):
//! depth-first search for augmenting paths in the bipartite graph of the
//! matrix pattern, with the classical "cheap assignment" first pass.

use splu_sparse::{Permutation, SparsityPattern};

/// Result of the transversal search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructuralRank {
    /// A full transversal exists; the permutation `rp` satisfies
    /// `A[rp.old_of(j)][j] ≠ 0` structurally for every `j`, i.e.
    /// `A.permuted(&rp, &identity)` has a zero-free diagonal.
    Full(Permutation),
    /// The matrix is structurally singular; only `rank` columns could be
    /// matched.
    Deficient {
        /// Size of the maximum matching found.
        rank: usize,
    },
}

/// Computes a maximum transversal of a square pattern.
///
/// Returns [`StructuralRank::Full`] with the row permutation when the matrix
/// is structurally nonsingular, [`StructuralRank::Deficient`] otherwise.
pub fn maximum_transversal(pattern: &SparsityPattern) -> StructuralRank {
    assert!(pattern.is_square(), "transversal requires a square matrix");
    let n = pattern.ncols();
    // match_row[r] = column matched to row r (or NONE).
    // match_col[c] = row matched to column c (or NONE).
    const NONE: usize = usize::MAX;
    let mut match_row = vec![NONE; n];
    let mut match_col = vec![NONE; n];

    // Cheap assignment: first unmatched row in each column.
    for c in 0..n {
        for &r in pattern.col(c) {
            if match_row[r] == NONE {
                match_row[r] = c;
                match_col[c] = r;
                break;
            }
        }
    }

    // Augmenting-path phase. An iterative DFS; `visited` is stamped by the
    // starting column to avoid clearing.
    let mut visited = vec![NONE; n];
    // DFS stack entries: (column, index into that column's row list).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut rank = match_col.iter().filter(|&&r| r != NONE).count();

    for start in 0..n {
        if match_col[start] != NONE {
            continue;
        }
        stack.clear();
        stack.push((start, 0));
        visited[start] = start;
        // Records the row chosen at each stack level for path unwinding.
        let mut chosen: Vec<usize> = vec![NONE];
        let mut augmented = false;
        while let Some(&(c, idx)) = stack.last() {
            let rows = pattern.col(c);
            if idx >= rows.len() {
                stack.pop();
                chosen.pop();
                continue;
            }
            stack.last_mut().expect("stack nonempty").1 += 1;
            let r = rows[idx];
            let owner = match_row[r];
            if owner == NONE {
                // Augmenting path found: flip matches along the stack.
                *chosen.last_mut().expect("chosen tracks stack") = r;
                for level in 0..stack.len() {
                    let col = stack[level].0;
                    let row = chosen[level];
                    match_col[col] = row;
                    match_row[row] = col;
                }
                augmented = true;
                break;
            }
            if visited[owner] != start {
                visited[owner] = start;
                *chosen.last_mut().expect("chosen tracks stack") = r;
                stack.push((owner, 0));
                chosen.push(NONE);
            }
        }
        if augmented {
            rank += 1;
        }
    }

    if rank < n {
        return StructuralRank::Deficient { rank };
    }
    // Row permutation: new row j should be old row match_col[j].
    let perm = Permutation::from_vec(match_col).expect("perfect matching is a bijection");
    StructuralRank::Full(perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::SparsityPattern;

    fn check_full(pattern: &SparsityPattern) -> Permutation {
        match maximum_transversal(pattern) {
            StructuralRank::Full(p) => {
                let id = Permutation::identity(pattern.ncols());
                let b = pattern.permuted(&p, &id);
                assert!(b.has_zero_free_diagonal(), "diagonal not zero-free");
                p
            }
            StructuralRank::Deficient { rank } => {
                panic!("expected full rank, got deficient rank {rank}")
            }
        }
    }

    #[test]
    fn already_diagonal() {
        let p = SparsityPattern::identity(4);
        let t = check_full(&p);
        assert!(t.is_identity());
    }

    #[test]
    fn needs_augmenting_paths() {
        // Anti-diagonal matrix: must fully reverse.
        let n = 5;
        let p = SparsityPattern::from_entries(n, n, (0..n).map(|i| (n - 1 - i, i))).unwrap();
        check_full(&p);
    }

    #[test]
    fn chain_requiring_reassignment() {
        // Column 0: rows {0}; column 1: rows {0, 1}; column 2: rows {1, 2}.
        // The cheap pass matches col0→row0; col1 must then take row1 via the
        // augmenting machinery when col2 competes.
        let p = SparsityPattern::from_entries(3, 3, vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)])
            .unwrap();
        check_full(&p);
    }

    #[test]
    fn cheap_pass_blocking_case() {
        // Designed so the cheap assignment takes a row that the last column
        // needs, forcing a length-3 augmenting path.
        // col0: {r0, r1}; col1: {r0}; col2: {r1, r2}; all matched only via flip.
        let p = SparsityPattern::from_entries(3, 3, vec![(0, 0), (1, 0), (0, 1), (1, 2), (2, 2)])
            .unwrap();
        check_full(&p);
    }

    #[test]
    fn detects_structural_singularity() {
        // Column 2 is empty.
        let p = SparsityPattern::from_entries(3, 3, vec![(0, 0), (1, 1), (0, 1)]).unwrap();
        match maximum_transversal(&p) {
            StructuralRank::Deficient { rank } => assert_eq!(rank, 2),
            _ => panic!("expected deficiency"),
        }
    }

    #[test]
    fn two_columns_sharing_single_row_is_singular() {
        let p = SparsityPattern::from_entries(2, 2, vec![(0, 0), (0, 1)]).unwrap();
        assert_eq!(
            maximum_transversal(&p),
            StructuralRank::Deficient { rank: 1 }
        );
    }

    #[test]
    fn random_patterns_with_planted_diagonal() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for n in [1usize, 2, 5, 17, 60] {
            let mut entries: Vec<(usize, usize)> = Vec::new();
            // Plant a hidden perfect matching along a random permutation.
            let mut rows: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                rows.swap(i, rng.gen_range(0..=i));
            }
            for (c, &r) in rows.iter().enumerate() {
                entries.push((r, c));
            }
            for _ in 0..3 * n {
                entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
            }
            let p = SparsityPattern::from_entries(n, n, entries).unwrap();
            check_full(&p);
        }
    }
}
