//! Orderings for `parsplu`: pre-pivoting and fill reduction.
//!
//! The paper's pipeline (Section 1) starts with two permutations before any
//! factorization work:
//!
//! 1. a **maximum transversal** (row permutation) so the matrix has a
//!    zero-free diagonal — the paper cites Duff's algorithm \[3\]; see
//!    [`maximum_transversal`];
//! 2. a **fill-reducing column ordering**, "the minimum degree algorithm on
//!    `AᵀA`" — see [`min_degree`] and the convenience wrapper
//!    [`column_min_degree`].
//!
//! [`reverse_cuthill_mckee`] is provided as an additional profile-reducing
//! ordering for comparison experiments (not used by the paper itself).

// Index-based loops are the natural idiom for the numerical kernels and
// symbolic algorithms in this crate; iterator rewrites obscure the maths.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mindeg;
mod rcm;
mod transversal;

pub use mindeg::{
    column_min_degree, column_min_degree_multi, column_min_degree_multi_with,
    column_min_degree_with, min_degree, min_degree_multi, min_degree_multi_with, min_degree_with,
};
pub use rcm::reverse_cuthill_mckee;
pub use transversal::{maximum_transversal, StructuralRank};
