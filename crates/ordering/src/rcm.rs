//! Reverse Cuthill–McKee profile-reducing ordering.
//!
//! Not used by the paper's own pipeline (it uses minimum degree on `AᵀA`),
//! but provided as an alternative fill-reducing ordering for the ablation
//! benchmarks: band-oriented orderings produce very different supernode and
//! elimination-forest shapes, which is instructive when studying the
//! postordering step.

use splu_sparse::{Permutation, SparsityPattern};
use std::collections::VecDeque;

/// Computes the reverse Cuthill–McKee ordering of the symmetrized pattern.
///
/// Each connected component is started from a pseudo-peripheral vertex found
/// by repeated BFS. Returns a permutation in the same convention as
/// [`crate::min_degree`].
pub fn reverse_cuthill_mckee(pattern: &SparsityPattern) -> Permutation {
    assert!(pattern.is_square(), "RCM requires a square pattern");
    let n = pattern.ncols();
    let sym = pattern.union(&pattern.transpose());
    let neighbors = |v: usize| sym.col(v).iter().copied().filter(move |&u| u != v);
    let degree: Vec<usize> = (0..n).map(|v| neighbors(v).count()).collect();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    for root_candidate in 0..n {
        if visited[root_candidate] {
            continue;
        }
        let root = pseudo_peripheral(&sym, root_candidate, &degree);
        queue.push_back(root);
        visited[root] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = neighbors(v).filter(|&u| !visited[u]).collect();
            nbrs.sort_unstable_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_vec(order).expect("BFS over all components is a bijection")
}

/// Finds a pseudo-peripheral vertex of the component containing `start` by
/// the George–Liu iteration: BFS, move to a minimum-degree vertex on the last
/// level, repeat while eccentricity grows.
fn pseudo_peripheral(sym: &SparsityPattern, start: usize, degree: &[usize]) -> usize {
    let n = sym.ncols();
    let mut current = start;
    let mut last_ecc = 0usize;
    let mut level = vec![usize::MAX; n];
    loop {
        // BFS from `current`.
        level.iter_mut().for_each(|l| *l = usize::MAX);
        level[current] = 0;
        let mut q = VecDeque::from([current]);
        let mut far = current;
        while let Some(v) = q.pop_front() {
            for &u in sym.col(v) {
                if u != v && level[u] == usize::MAX {
                    level[u] = level[v] + 1;
                    if level[u] > level[far] {
                        far = u;
                    }
                    q.push_back(u);
                }
            }
        }
        let ecc = level[far];
        if ecc <= last_ecc {
            return current;
        }
        last_ecc = ecc;
        // Minimum-degree vertex on the last level.
        current = (0..n)
            .filter(|&v| level[v] == ecc)
            .min_by_key(|&v| degree[v])
            .unwrap_or(far);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bandwidth of the symmetrized, permuted pattern.
    fn bandwidth(pattern: &SparsityPattern, perm: &Permutation) -> usize {
        let sym = pattern.union(&pattern.transpose());
        let b = sym.permuted(perm, perm);
        b.entries().map(|(i, j)| i.abs_diff(j)).max().unwrap_or(0)
    }

    fn grid(nx: usize, ny: usize) -> SparsityPattern {
        let n = nx * ny;
        let id = |x: usize, y: usize| x + y * nx;
        let mut e = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                let v = id(x, y);
                e.push((v, v));
                if x + 1 < nx {
                    e.push((v, id(x + 1, y)));
                    e.push((id(x + 1, y), v));
                }
                if y + 1 < ny {
                    e.push((v, id(x, y + 1)));
                    e.push((id(x, y + 1), v));
                }
            }
        }
        SparsityPattern::from_entries(n, n, e).unwrap()
    }

    #[test]
    fn rcm_is_a_permutation_and_reduces_bandwidth_of_shuffled_path() {
        use rand::rngs::SmallRng;
        use rand::Rng;
        use rand::SeedableRng;
        let n = 30;
        // A path graph with shuffled labels has large bandwidth; RCM should
        // recover bandwidth 1.
        let mut labels: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        for i in (1..n).rev() {
            labels.swap(i, rng.gen_range(0..=i));
        }
        let mut e: Vec<(usize, usize)> = (0..n).map(|i| (labels[i], labels[i])).collect();
        for i in 0..n - 1 {
            e.push((labels[i], labels[i + 1]));
            e.push((labels[i + 1], labels[i]));
        }
        let p = SparsityPattern::from_entries(n, n, e).unwrap();
        let perm = reverse_cuthill_mckee(&p);
        assert_eq!(bandwidth(&p, &perm), 1);
    }

    #[test]
    fn rcm_on_grid_beats_random_labelling() {
        let p = grid(7, 7);
        let perm = reverse_cuthill_mckee(&p);
        // Optimal grid bandwidth is min(nx, ny); allow slack but require
        // much better than the worst case of n-1.
        assert!(bandwidth(&p, &perm) <= 10);
    }

    #[test]
    fn handles_disconnected_components_and_isolated_vertices() {
        // Two disjoint edges + one isolated vertex.
        let e = vec![
            (0, 0),
            (1, 1),
            (0, 1),
            (1, 0),
            (2, 2),
            (3, 3),
            (2, 3),
            (3, 2),
            (4, 4),
        ];
        let p = SparsityPattern::from_entries(5, 5, e).unwrap();
        let perm = reverse_cuthill_mckee(&p);
        assert_eq!(perm.len(), 5);
    }

    #[test]
    fn empty_graph() {
        let p = SparsityPattern::empty(0, 0);
        assert!(reverse_cuthill_mckee(&p).is_empty());
    }
}
