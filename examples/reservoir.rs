//! Oil-reservoir time stepping: one symbolic analysis, many numerical
//! factorizations.
//!
//! Implicit reservoir simulators (the source of the orsreg/saylr/sherman
//! matrices the paper evaluates on) solve a pressure system every time step.
//! The coefficients change with the saturation field, but the *pattern*
//! stays fixed — exactly the situation static symbolic factorization is
//! built for: analyze once, then re-run only the numerical phase each step.
//!
//! ```text
//! cargo run --release --example reservoir
//! ```

use parsplu::core::{analyze, Options, TaskGraphKind};
use parsplu::matgen::{grid3d_anisotropic, GridOptions};
use parsplu::sched::Mapping;
use parsplu::sparse::{relative_residual, CscMatrix};
use std::time::Instant;

/// Pressure-dependent refresh of the matrix coefficients: same pattern,
/// time-varying values (mobility changes as the front moves).
fn refresh_values(a: &CscMatrix, step: usize) -> CscMatrix {
    let n = a.nrows();
    let trips: Vec<(usize, usize, f64)> = a
        .triplets()
        .map(|(i, j, v)| {
            let wobble = 1.0 + 0.05 * (((i * 31 + j * 17 + step * 101) % 97) as f64 / 97.0);
            (i, j, v * wobble)
        })
        .collect();
    CscMatrix::from_triplets(n, n, &trips).expect("same pattern, new values")
}

fn main() {
    // orsreg1-style grid: 21 × 21 × 5.
    let a0 = grid3d_anisotropic(21, 21, 5, GridOptions::default());
    let n = a0.ncols();
    println!("reservoir grid 21x21x5: n = {n}, nnz = {}", a0.nnz());

    let t0 = Instant::now();
    let sym = analyze(a0.pattern(), &Options::default()).expect("analysis succeeds");
    let graph = sym.build_graph(TaskGraphKind::EForest);
    println!(
        "analysis once: {:?} (supernodes = {}, tasks = {})",
        t0.elapsed(),
        sym.stats.supernodes,
        sym.stats.graph_tasks
    );

    // Pseudo time loop: pressure solve per step, reusing the analysis.
    let mut pressure = vec![0.0_f64; n];
    let mut total_numeric = std::time::Duration::ZERO;
    let steps = 10;
    for step in 0..steps {
        let a = refresh_values(&a0, step);
        // Source/sink terms: injection at one corner, production at the
        // other, plus the previous pressure as the accumulation term.
        let mut b: Vec<f64> = pressure.iter().map(|p| 0.2 * p).collect();
        b[0] += 100.0;
        b[n - 1] -= 80.0;

        let t = Instant::now();
        let num = sym
            .factor_numeric(&a, &graph, 2, Mapping::Static1D, 0.0)
            .expect("numeric factorization succeeds");
        total_numeric += t.elapsed();
        pressure = num.solve(&b);

        let resid = relative_residual(&a, &pressure, &b);
        assert!(resid < 1e-10, "step {step}: residual {resid}");
        if step % 3 == 0 {
            println!(
                "step {step:>2}: factor {:>8.2?}  residual {resid:.2e}  p[mid] = {:+.3}",
                t.elapsed(),
                pressure[n / 2]
            );
        }
    }
    println!(
        "{steps} steps: total numeric time {total_numeric:?} (analysis amortized {:.1}x)",
        steps as f64
    );
    println!("ok");
}
