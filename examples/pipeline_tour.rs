//! Tour of the full pipeline on the paper's benchmark suite: per-phase
//! timings, structural statistics and solve residuals for all seven
//! matrices.
//!
//! ```text
//! cargo run --release --example pipeline_tour
//! ```

use parsplu::core::{analyze, Options, TaskGraphKind};
use parsplu::matgen::{manufactured_rhs, paper_suite, Scale};
use parsplu::sched::Mapping;
use parsplu::sparse::relative_residual;
use std::time::Instant;

fn main() {
    println!(
        "{:<9} {:>6} {:>8} {:>6} {:>6} {:>9} {:>9} {:>9} {:>10}",
        "matrix", "n", "nnz", "fill", "SN", "analyze", "factor", "solve", "residual"
    );
    for m in paper_suite(Scale::Full) {
        let t0 = Instant::now();
        let sym = analyze(m.a.pattern(), &Options::default()).expect("analysis succeeds");
        let t_analyze = t0.elapsed();
        let graph = sym.build_graph(TaskGraphKind::EForest);
        let t1 = Instant::now();
        let num = sym
            .factor_numeric(&m.a, &graph, 1, Mapping::Static1D, 0.0)
            .expect("factorization succeeds");
        let t_factor = t1.elapsed();
        let (_, b) = manufactured_rhs(&m.a, 5);
        let t2 = Instant::now();
        let x = num.solve(&b);
        let t_solve = t2.elapsed();
        let resid = relative_residual(&m.a, &x, &b);
        println!(
            "{:<9} {:>6} {:>8} {:>6.1} {:>6} {:>9.2?} {:>9.2?} {:>9.2?} {:>10.2e}",
            m.name,
            sym.stats.n,
            sym.stats.nnz_a,
            sym.stats.fill_ratio,
            sym.stats.supernodes,
            t_analyze,
            t_factor,
            t_solve,
            resid
        );
        assert!(resid < 1e-10, "{}: residual too large", m.name);
    }
    println!("ok");
}
