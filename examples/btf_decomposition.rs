//! The block-upper-triangular decomposition from postordering (Section 3).
//!
//! The paper observes that postordering the LU eforest yields a block upper
//! triangular form "for free": each tree of the forest becomes one diagonal
//! block, with all coupling strictly above. On reducible matrices (our
//! sherman3 analogue: 137 trees) this decouples the factorization into
//! independent diagonal blocks. This example prints the block profile and
//! verifies the decomposition.
//!
//! ```text
//! cargo run --release --example btf_decomposition
//! ```

use parsplu::matgen::{paper_suite, Scale};
use parsplu::symbolic::{
    block_triangular_form, postorder_permutation, static_symbolic_factorization, EliminationForest,
};

fn main() {
    for m in paper_suite(Scale::Full) {
        let f = static_symbolic_factorization(m.a.pattern()).expect("zero-free diagonal");
        let po = postorder_permutation(&f);
        let forest = EliminationForest::from_filled(&f).relabel(&po);
        let blocks = block_triangular_form(&forest);
        let filled = f.filled_pattern().permuted(&po, &po);

        // Verify: no entry below the block diagonal.
        let mut block_of = vec![0usize; forest.n()];
        for (b, blk) in blocks.iter().enumerate() {
            block_of[blk.start..blk.end].fill(b);
        }
        for (i, j) in filled.entries() {
            assert!(
                block_of[i] <= block_of[j],
                "{}: entry below block diagonal",
                m.name
            );
        }

        let largest = blocks.iter().map(|b| b.len()).max().unwrap_or(0);
        let singletons = blocks.iter().filter(|b| b.len() == 1).count();
        println!(
            "{:<10} blocks = {:>4}  largest = {:>5} ({:>5.1}%)  1x1 blocks = {:>4}",
            m.name,
            blocks.len(),
            largest,
            100.0 * largest as f64 / forest.n() as f64,
            singletons
        );
    }
    println!("\n(paper: 'a large number of blocks for the first four matrices...");
    println!(" only the last block has a significant size' — our sherman3 analogue");
    println!(" shows that profile; the other generators are irreducible)");
}
