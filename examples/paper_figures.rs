//! Walkthrough of the paper's Figures 1–4 on the small example matrix:
//! the extended LU eforest (Fig. 1), the block-upper-triangular form after
//! postordering (Fig. 3), and the two task dependence graphs (Fig. 4).
//!
//! ```text
//! cargo run --example paper_figures
//! ```

use parsplu::sched::{build_eforest_graph, build_sstar_graph, Task};
use parsplu::symbolic::fixtures::fig1_pattern;
use parsplu::symbolic::supernode::BlockStructure;
use parsplu::symbolic::{
    block_triangular_form, static_symbolic_factorization, ExtendedEforest, Partition,
};

fn print_pattern(title: &str, p: &parsplu::sparse::SparsityPattern) {
    println!("{title}");
    for i in 0..p.nrows() {
        print!("  ");
        for j in 0..p.ncols() {
            print!("{}", if p.contains(i, j) { " x" } else { " ." });
        }
        println!();
    }
}

fn main() {
    // --- Figure 1: the matrix, its filled structure and extended eforest.
    let a = fig1_pattern();
    print_pattern("Figure 1(a): matrix A", &a);
    let f = static_symbolic_factorization(&a).expect("zero-free diagonal");
    print_pattern(
        "\nstatic symbolic factorization Ā = L̄ + Ū − I",
        &f.filled_pattern(),
    );

    let ext = ExtendedEforest::new(&f);
    let forest = ext.forest();
    println!("\nFigure 1(b): extended LU eforest");
    println!("  node | parent | row-branch start | col-subtree leaves");
    for j in 0..f.n() {
        println!(
            "  {:>4} | {:>6} | {:>16} | {:?}",
            j,
            forest
                .parent(j)
                .map_or("root".to_string(), |p| p.to_string()),
            ext.row_branch_start(j),
            ext.col_subtree_leaves(j),
        );
    }

    // --- Figure 3: postordering → block upper triangular form.
    let po = forest.postorder();
    println!("\npostorder permutation (new ← old): {:?}", po.as_slice());
    let permuted = f.filled_pattern().permuted(&po, &po);
    print_pattern("\nFigure 3: Pᵀ Ā P (block upper triangular)", &permuted);
    let relabelled = forest.relabel(&po);
    let blocks = block_triangular_form(&relabelled);
    println!(
        "diagonal blocks: {:?}",
        blocks.iter().map(|b| (b.start, b.end)).collect::<Vec<_>>()
    );

    // --- Figure 4: the task dependence graphs (per-column granularity, as
    //     in the paper's illustration).
    let f2 = static_symbolic_factorization(&a.permuted(&po, &po)).expect("Theorem 3");
    let bs = BlockStructure::new(&f2, Partition::singletons(f2.n()));
    let sstar = build_sstar_graph(&bs);
    let eforest = build_eforest_graph(&bs);
    println!("\nFigure 4(b): S* task dependence graph");
    println!(
        "  {} tasks, {} edges, critical path {}",
        sstar.len(),
        sstar.num_edges(),
        sstar.critical_path_len()
    );
    println!("Figure 4(c): new (eforest) task dependence graph");
    println!(
        "  {} tasks, {} edges, critical path {}",
        eforest.len(),
        eforest.num_edges(),
        eforest.critical_path_len()
    );
    println!("\nedges of the eforest graph:");
    for t in 0..eforest.len() {
        for &s in eforest.successors(t) {
            let show = |task: Task| match task {
                Task::Factor(k) => format!("F({k})"),
                Task::Update { src, dst } => format!("U({src},{dst})"),
            };
            println!("  {} -> {}", show(eforest.task(t)), show(eforest.task(s)));
        }
    }
    println!("\nok");
}
