//! The paper's Section 2 aside: the LU eforest characterization "leads also
//! to the definition of a compact storage scheme for an unsymmetric sparse
//! matrix". This example measures that scheme on the benchmark suite.
//!
//! Per matrix it stores, instead of the full index structure of `Ā`:
//! one branch-start integer per row (rows of `L̄` are forest branches), the
//! column-subtree leaf lists (columns of `Ū` are ancestor-closed), and the
//! parent array — then reconstructs both factors and verifies equality.
//!
//! ```text
//! cargo run --release --example compact_storage
//! ```

use parsplu::matgen::{paper_suite, Scale};
use parsplu::symbolic::{static_symbolic_factorization, ExtendedEforest};

fn main() {
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>8}",
        "matrix", "nnz(Abar)", "index words", "compact", "ratio"
    );
    for m in paper_suite(Scale::Reduced) {
        let f = static_symbolic_factorization(m.a.pattern()).expect("zero-free diagonal");
        let ext = ExtendedEforest::new(&f);
        // Verify the reconstruction is exact before trusting the counters.
        assert_eq!(ext.reconstruct_l(), f.l, "{}: L mismatch", m.name);
        assert_eq!(ext.reconstruct_u(), f.u, "{}: U mismatch", m.name);
        // A conventional compressed index structure stores about one word
        // per entry (plus column pointers).
        let index_words = f.nnz_filled() + f.n() + 1;
        let compact = ext.compact_words();
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>8.2}",
            m.name,
            f.nnz_filled(),
            index_words,
            compact,
            index_words as f64 / compact as f64
        );
    }
    println!("\n(compact = 2 words/node + column-subtree leaves; reconstruction verified)");
}
