//! Quickstart: factor an unsymmetric sparse matrix and solve a system.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parsplu::core::{Options, SparseLu};
use parsplu::matgen::{grid3d_anisotropic, manufactured_rhs, GridOptions};
use parsplu::sparse::relative_residual;

fn main() {
    // A small oil-reservoir style problem: 3D anisotropic 7-point grid.
    let a = grid3d_anisotropic(12, 12, 4, GridOptions::default());
    let n = a.ncols();
    println!("matrix: n = {n}, nnz = {}", a.nnz());

    // A manufactured right-hand side with a known solution.
    let (x_true, b) = manufactured_rhs(&a, 42);

    // Factor with the paper's defaults: minimum degree on AᵀA, static
    // symbolic factorization, eforest postordering, supernode amalgamation
    // and the least-dependence task graph.
    let lu = SparseLu::factor(&a, &Options::default()).expect("factorization succeeds");
    let s = lu.stats();
    println!(
        "analysis: |Ā|/|A| = {:.2}, supernodes = {} (exact {}), BTF blocks = {}",
        s.fill_ratio, s.supernodes, s.supernodes_exact, s.btf_blocks
    );
    println!(
        "task graph: {} tasks, {} edges, critical path {}",
        s.graph_tasks, s.graph_edges, s.critical_path
    );

    let x = lu.solve(&b);
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    println!("solve: max |x - x_true| = {err:.3e}");
    println!("scaled residual = {:.3e}", relative_residual(&a, &x, &b));
    assert!(relative_residual(&a, &x, &b) < 1e-10);
    println!("ok");
}
