//! Numerical-stability report across the benchmark suite: growth factors,
//! condition estimates, residuals with and without refinement, and the
//! pivot-rule trade-off (partial vs threshold vs static-diagonal).
//!
//! ```text
//! cargo run --release --example stability_report
//! ```

use parsplu::core::{estimate_inverse_1norm, Options, PivotRule, SparseLu};
use parsplu::matgen::{manufactured_rhs, paper_suite, Scale};
use parsplu::sparse::relative_residual;

fn main() {
    println!(
        "{:<10} {:>10} {:>10} {:>11} {:>11} {:>12}",
        "matrix", "growth", "cond_1", "resid", "refined", "swaps(thr.)"
    );
    for m in paper_suite(Scale::Reduced) {
        let (_, b) = manufactured_rhs(&m.a, 77);
        let lu = SparseLu::factor(&m.a, &Options::default()).expect("factors");
        let growth = lu.growth(&m.a);
        let cond = estimate_inverse_1norm(&lu, m.a.ncols(), 5) * m.a.one_norm();
        let x = lu.solve(&b);
        let resid = relative_residual(&m.a, &x, &b);
        let (xr, _) = lu.solve_refined(&m.a, &b, 0.0, 1);
        let resid_ref = relative_residual(&m.a, &xr, &b);

        // Threshold pivoting: same matrix, fewer interchanges.
        let thr = SparseLu::factor(
            &m.a,
            &Options {
                pivot_rule: PivotRule::Threshold(0.1),
                ..Options::default()
            },
        )
        .expect("threshold pivoting succeeds on the suite");
        let xt = thr.solve(&b);
        let resid_thr = relative_residual(&m.a, &xt, &b);
        assert!(resid_thr < 1e-8, "{}: threshold pivoting unstable", m.name);

        println!(
            "{:<10} {:>10.2e} {:>10.2e} {:>11.2e} {:>11.2e} {:>12.2e}",
            m.name, growth, cond, resid, resid_ref, resid_thr
        );
    }
    println!("\n(resid = scaled residual with partial pivoting; refined = after one");
    println!(" refinement step; swaps(thr.) = residual under τ=0.1 threshold pivoting)");
}
