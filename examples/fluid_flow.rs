//! Fluid-flow scenario: compare the two task dependence graphs on a
//! linearized Navier–Stokes system (the lnsp3937/lns3937 workload).
//!
//! Prints tasks/edges/critical path for the S* graph and the paper's
//! eforest graph, wall-clock times with 1 and 2 threads, and the simulated
//! makespans on up to 8 virtual processors.
//!
//! ```text
//! cargo run --release --example fluid_flow
//! ```

use parsplu::core::{analyze, estimate_task_costs, Options, TaskGraphKind};
use parsplu::matgen::{manufactured_rhs, navier_stokes_2d};
use parsplu::sched::{simulate, CostModel, Mapping};
use parsplu::sparse::relative_residual;
use std::time::Instant;

fn main() {
    let a = navier_stokes_2d(24, 24, 7);
    println!(
        "linearized Navier–Stokes 24x24 staggered grid: n = {}, nnz = {}",
        a.ncols(),
        a.nnz()
    );
    let sym = analyze(a.pattern(), &Options::default()).expect("analysis succeeds");
    let (_, b) = manufactured_rhs(&a, 3);

    for kind in [TaskGraphKind::SStar, TaskGraphKind::EForest] {
        let graph = sym.build_graph(kind);
        println!(
            "\n{kind:?}: {} tasks, {} edges, critical path {}",
            graph.len(),
            graph.num_edges(),
            graph.critical_path_len()
        );
        for threads in [1usize, 2] {
            let t = Instant::now();
            let num = sym
                .factor_numeric(&a, &graph, threads, Mapping::Static1D, 0.0)
                .expect("factorization succeeds");
            let dt = t.elapsed();
            let x = num.solve(&b);
            let resid = relative_residual(&a, &x, &b);
            println!("  threads = {threads}: factor {dt:>9.2?}  residual {resid:.2e}");
        }
        // Simulated Origin-2000-style scaling beyond the physical cores.
        let costs = estimate_task_costs(&sym.block_structure, &graph);
        let model = CostModel::default();
        print!("  simulated makespan:");
        for p in [1usize, 2, 4, 8] {
            let r = simulate(&graph, p, Mapping::Static1D, &costs, &model);
            print!("  P={p}: {:.1} ms", r.makespan * 1e3);
        }
        println!();
    }
    println!("\nok");
}
