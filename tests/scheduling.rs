//! Integration tests of the scheduling layer on real (reduced-scale)
//! benchmark structures: simulator invariants and executor/simulator
//! consistency.

use parsplu::core::{analyze, estimate_task_costs, Options, TaskGraphKind};
use parsplu::matgen::{paper_suite, Scale};
use parsplu::sched::{
    block_forest, build_fine_graph, simulate, simulate_fine, simulate_static_order, CostModel,
    Grid, Mapping,
};

fn model() -> CostModel {
    CostModel {
        seconds_per_flop: 1e-8,
        seconds_per_word: 4e-8,
        task_overhead: 4e-6,
        edge_latency: 1e-5,
    }
}

#[test]
fn simulated_makespans_shrink_with_processors_on_the_suite() {
    for m in paper_suite(Scale::Reduced) {
        let sym = analyze(m.a.pattern(), &Options::default()).unwrap();
        let g = sym.build_graph(TaskGraphKind::EForest);
        let costs = estimate_task_costs(&sym.block_structure, &g);
        let mk = |p: usize| simulate(&g, p, Mapping::Dynamic, &costs, &model()).makespan;
        let (m1, m2, m8) = (mk(1), mk(2), mk(8));
        assert!(m2 <= m1 + 1e-12, "{}: P=2 slower than serial", m.name);
        assert!(m8 <= m2 + 1e-12, "{}: P=8 slower than P=2", m.name);
        assert!(m8 >= m1 / 8.0 - 1e-12, "{}: superlinear speedup", m.name);
    }
}

#[test]
fn all_three_disciplines_agree_at_one_processor() {
    for m in paper_suite(Scale::Reduced).into_iter().take(3) {
        let sym = analyze(m.a.pattern(), &Options::default()).unwrap();
        let g = sym.build_graph(TaskGraphKind::EForest);
        let costs = estimate_task_costs(&sym.block_structure, &g);
        let md = model();
        let a = simulate(&g, 1, Mapping::Static1D, &costs, &md).makespan;
        let b = simulate(&g, 1, Mapping::Dynamic, &costs, &md).makespan;
        let c = simulate_static_order(&g, 1, &costs, &md).makespan;
        assert!((a - b).abs() < 1e-9 * a.max(1e-30), "{}", m.name);
        assert!((a - c).abs() < 1e-9 * a.max(1e-30), "{}", m.name);
    }
}

#[test]
fn eforest_graph_beats_sstar_under_dynamic_simulation_suitewide() {
    // The Figures 5-6 claim as an integration invariant: the mean
    // improvement over the suite is positive at P = 4 and 8.
    for p in [4usize, 8] {
        let mut ratio_sum = 0.0;
        let mut count = 0;
        for m in paper_suite(Scale::Reduced) {
            let sym = analyze(m.a.pattern(), &Options::default()).unwrap();
            let ge = sym.build_graph(TaskGraphKind::EForest);
            let gs = sym.build_graph(TaskGraphKind::SStar);
            let ce = estimate_task_costs(&sym.block_structure, &ge);
            let cs = estimate_task_costs(&sym.block_structure, &gs);
            let te = simulate(&ge, p, Mapping::Dynamic, &ce, &model()).makespan;
            let ts = simulate(&gs, p, Mapping::Dynamic, &cs, &model()).makespan;
            ratio_sum += te / ts;
            count += 1;
        }
        let mean = ratio_sum / count as f64;
        assert!(
            mean < 1.0,
            "eforest graph should win on average at P={p}: mean ratio {mean}"
        );
    }
}

#[test]
fn fine_decomposition_covers_the_same_work() {
    for m in paper_suite(Scale::Reduced).into_iter().take(4) {
        let sym = analyze(m.a.pattern(), &Options::default()).unwrap();
        let forest = block_forest(&sym.block_structure);
        let fg = build_fine_graph(&sym.block_structure, &forest);
        let coarse = sym.build_graph(TaskGraphKind::EForest);
        assert!(fg.len() >= coarse.len(), "{}", m.name);
        // Simulated serial fine work should be within 2x of coarse serial
        // work under the same pure-flop model (stage splitting adds only
        // overhead terms).
        let md = CostModel {
            seconds_per_flop: 1.0,
            seconds_per_word: 0.0,
            task_overhead: 0.0,
            edge_latency: 0.0,
        };
        let fine = simulate_fine(&fg, &sym.block_structure, Grid::OneD(1), &md);
        let costs = estimate_task_costs(&sym.block_structure, &coarse);
        let coarse_work: f64 = costs.iter().map(|c| c.flops).sum();
        assert!(
            fine.total_work <= 2.0 * coarse_work + 1e-9
                && coarse_work <= 2.0 * fine.total_work + 1e-9,
            "{}: fine {} vs coarse {}",
            m.name,
            fine.total_work,
            coarse_work
        );
    }
}

#[test]
fn two_d_grids_help_on_large_processor_counts() {
    // The future-work trend: at P=16 a 4x4 grid should not lose to 1D on
    // the suite average.
    let mut ratio_sum = 0.0;
    let mut count = 0;
    for m in paper_suite(Scale::Reduced) {
        let sym = analyze(m.a.pattern(), &Options::default()).unwrap();
        let forest = block_forest(&sym.block_structure);
        let fg = build_fine_graph(&sym.block_structure, &forest);
        let md = model();
        let one_d = simulate_fine(&fg, &sym.block_structure, Grid::OneD(16), &md).makespan;
        let two_d = simulate_fine(&fg, &sym.block_structure, Grid::TwoD(4, 4), &md).makespan;
        ratio_sum += two_d / one_d;
        count += 1;
    }
    let mean = ratio_sum / count as f64;
    assert!(mean < 1.1, "2D grids collapsed at P=16: mean ratio {mean}");
}
