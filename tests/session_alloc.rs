//! The zero-allocation guarantee of the refactor hot path, asserted with
//! the counting global allocator: after the first factorization, a
//! one-thread untraced `SluSession::refactor` must not grow the heap
//! high-water mark by a single byte — storage reset, value scatter,
//! schedule replay, and pivot recycling all run in place.
//!
//! This file installs the counting allocator for its whole test binary,
//! so it holds exactly one test: a concurrent test in the same process
//! would race the global peak counter.

use parsplu::core::{Options, SluSession};
use parsplu::matgen::{manufactured_rhs, paper_suite, Scale};
use parsplu::obs::{heap_stats, reset_heap_peak, CountingAlloc};
use parsplu::sparse::{relative_residual, CscMatrix};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn revalue(a: &CscMatrix, salt: u64) -> CscMatrix {
    let mut b = a.clone();
    for (t, v) in b.values_mut().iter_mut().enumerate() {
        let wig = (((t as u64).wrapping_mul(salt * 2 + 1) % 89) as f64) / 89.0;
        *v += 0.2 * (wig - 0.5) * (1.0 + v.abs());
    }
    b
}

#[test]
fn refactor_hot_path_allocates_nothing() {
    let m = &paper_suite(Scale::Reduced)[0];
    let mut s = SluSession::analyze(m.a.pattern(), &Options::default()).unwrap();
    s.factor(&m.a).unwrap();
    let new_values: Vec<CscMatrix> = (0..3).map(|k| revalue(&m.a, k)).collect();
    // Warm-up refactor: lets any lazily-grown scratch (none expected, but
    // e.g. pivot vectors reach their high-water capacity here) stabilize.
    s.refactor(&new_values[0]).unwrap();
    for (round, vals) in new_values.iter().enumerate() {
        reset_heap_peak();
        let base = heap_stats().expect("allocator installed").peak_bytes;
        s.refactor(vals).unwrap();
        let after = heap_stats().unwrap().peak_bytes;
        assert_eq!(
            after,
            base,
            "refactor round {round} allocated {} heap bytes on the hot path",
            after - base
        );
    }
    // The factors produced under the no-alloc regime are still right.
    let last = new_values.last().unwrap();
    let (_, b) = manufactured_rhs(last, 41);
    let x = s.try_solve(&b).unwrap();
    assert!(relative_residual(last, &x, &b) < 1e-9);
}
