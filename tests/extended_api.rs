//! Integration coverage of the extended public API: condition estimation,
//! determinant, growth factor, multi-RHS, transpose solve, refinement,
//! left-looking and fine-grained execution — all across the benchmark
//! suite at reduced scale.

use parsplu::core::{
    analyze, estimate_inverse_1norm, factor_left_looking, factor_numeric_with, BlockMatrix,
    NumericRequest, Options, SparseLu, TaskGraphKind,
};
use parsplu::matgen::{manufactured_rhs, paper_suite, Scale};
use parsplu::sched::{block_forest, build_fine_graph, Mapping};
use parsplu::sparse::relative_residual;

#[test]
fn condest_is_finite_and_at_least_one_over_norm_suitewide() {
    for m in paper_suite(Scale::Reduced).into_iter().take(4) {
        let lu = SparseLu::factor(&m.a, &Options::default()).unwrap();
        let est = estimate_inverse_1norm(&lu, m.a.ncols(), 5);
        assert!(est.is_finite() && est > 0.0, "{}: {est}", m.name);
        // κ₁ = ‖A‖₁‖A⁻¹‖₁ ≥ 1 always.
        assert!(
            est * m.a.one_norm() >= 1.0 - 1e-9,
            "{}: condition estimate below 1",
            m.name
        );
    }
}

#[test]
fn transpose_and_forward_solves_are_consistent_suitewide() {
    // Solve A x = b, then Aᵀ y = x, and verify both residuals.
    for m in paper_suite(Scale::Reduced).into_iter().take(4) {
        let (_, b) = manufactured_rhs(&m.a, 2);
        let lu = SparseLu::factor(&m.a, &Options::default()).unwrap();
        let x = lu.solve(&b);
        assert!(relative_residual(&m.a, &x, &b) < 1e-10, "{}", m.name);
        let y = lu.solve_transposed(&x);
        let at = m.a.transpose();
        assert!(relative_residual(&at, &y, &x) < 1e-10, "{}", m.name);
    }
}

#[test]
fn left_looking_and_fine_execution_match_the_driver_numerically() {
    for m in paper_suite(Scale::Reduced).into_iter().take(3) {
        let sym = analyze(m.a.pattern(), &Options::default()).unwrap();
        let permuted = sym.permute_matrix(&m.a);
        let graph = sym.build_graph(TaskGraphKind::EForest);

        // Reference: graph-driven coarse execution.
        let reference = sym
            .factor_numeric_permuted(&permuted, &graph, 2, Mapping::Static1D, 0.0)
            .unwrap();
        let (_, b) = manufactured_rhs(&m.a, 9);
        let x_ref = reference.solve(&b);

        // Left-looking on a fresh assembly.
        let bm_left = BlockMatrix::assemble(&permuted, &sym.block_structure);
        factor_left_looking(&bm_left, 0.0).unwrap();
        // Fine-grained on a fresh assembly.
        let forest = block_forest(&sym.block_structure);
        let fg = build_fine_graph(&sym.block_structure, &forest);
        let bm_fine = BlockMatrix::assemble(&permuted, &sym.block_structure);
        factor_numeric_with(&bm_fine, &NumericRequest::fine(&fg).threads(2)).unwrap();

        // Solve through each factored storage via the permuted interface.
        for bm in [&bm_left, &bm_fine] {
            let mut y = sym.row_perm.apply_vec(&b);
            parsplu::core::solve_permuted(bm, &sym.block_structure, &mut y);
            let x = sym.col_perm.apply_inverse_vec(&y);
            assert_eq!(x, x_ref, "{}: executions disagree", m.name);
        }
    }
}

#[test]
fn parallel_solve_matches_sequential_suitewide() {
    for m in paper_suite(Scale::Reduced) {
        let (_, b) = manufactured_rhs(&m.a, 8);
        let lu = SparseLu::factor(&m.a, &Options::default()).unwrap();
        let x_seq = lu.solve(&b);
        for threads in [1usize, 2, 4] {
            let x_par = lu.solve_parallel(&b, threads);
            assert_eq!(x_par, x_seq, "{}: threads={threads}", m.name);
        }
    }
}

#[test]
fn refinement_never_worsens_the_residual_suitewide() {
    for m in paper_suite(Scale::Reduced) {
        let (_, b) = manufactured_rhs(&m.a, 4);
        let lu = SparseLu::factor(&m.a, &Options::default()).unwrap();
        let x0 = lu.solve(&b);
        let r0 = relative_residual(&m.a, &x0, &b);
        let (x1, _) = lu.solve_refined(&m.a, &b, 0.0, 2);
        let r1 = relative_residual(&m.a, &x1, &b);
        assert!(
            r1 <= r0 * 10.0 + 1e-15,
            "{}: refinement exploded ({r0} → {r1})",
            m.name
        );
    }
}

#[test]
fn determinant_sign_flips_with_a_row_swap() {
    use parsplu::sparse::CscMatrix;
    let a = CscMatrix::from_triplets(
        3,
        3,
        &[
            (0, 0, 2.0),
            (1, 1, 3.0),
            (2, 2, 4.0),
            (0, 1, 1.0),
            (2, 0, -1.0),
        ],
    )
    .unwrap();
    // Swap rows 0 and 1 of A.
    let swapped = CscMatrix::from_triplets_iter(
        3,
        3,
        a.triplets().map(|(i, j, v)| {
            let i2 = match i {
                0 => 1,
                1 => 0,
                other => other,
            };
            (i2, j, v)
        }),
    )
    .unwrap();
    let (s1, l1) = SparseLu::factor(&a, &Options::default())
        .unwrap()
        .determinant();
    let (s2, l2) = SparseLu::factor(&swapped, &Options::default())
        .unwrap()
        .determinant();
    assert_eq!(s1, -s2, "row swap must flip the determinant sign");
    assert!((l1 - l2).abs() < 1e-10, "magnitude unchanged by a swap");
}
