//! Full-scale stress runs (ignored by default — run with
//! `cargo test --release --test stress -- --ignored`).

use parsplu::core::{Options, SparseLu, TaskGraphKind};
use parsplu::matgen::{manufactured_rhs, paper_suite, random_unsymmetric, Scale};
use parsplu::sparse::relative_residual;

/// The complete paper-scale suite through the default pipeline.
#[test]
#[ignore = "full-scale run (~2 s per matrix in release, much slower in debug)"]
fn full_scale_suite_end_to_end() {
    for m in paper_suite(Scale::Full) {
        let (_, b) = manufactured_rhs(&m.a, 1);
        for task_graph in [TaskGraphKind::EForest, TaskGraphKind::SStar] {
            let opts = Options {
                task_graph,
                threads: 2,
                ..Options::default()
            };
            let lu = SparseLu::factor(&m.a, &opts).unwrap_or_else(|e| panic!("{}: {e}", m.name));
            let x = lu.solve(&b);
            let r = relative_residual(&m.a, &x, &b);
            assert!(r < 1e-9, "{} ({task_graph:?}): residual {r}", m.name);
        }
    }
}

/// A large random matrix exercising deep elimination chains.
#[test]
#[ignore = "full-scale run"]
fn large_random_matrix() {
    let a = random_unsymmetric(10_000, 5, 2024);
    let (_, b) = manufactured_rhs(&a, 3);
    let lu = SparseLu::factor(
        &a,
        &Options {
            threads: 2,
            ..Options::default()
        },
    )
    .unwrap();
    let x = lu.solve(&b);
    assert!(relative_residual(&a, &x, &b) < 1e-9);
}
