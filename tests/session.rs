//! Session invariance suite: refactorization must be *bitwise* identical
//! to a fresh factorization of the same values, across thread counts and
//! mappings; pattern mismatches and premature solves are structured
//! errors; an interrupted refactorization leaves the session reusable;
//! and a refactorization runs no symbolic phase at all (phase walls).

use parsplu::core::{
    pattern_hash, BlockMatrix, LuError, ObsSession, Options, OptionsBuilder, RunBudget, SluSession,
};
use parsplu::matgen::{manufactured_rhs, paper_suite, Scale};
use parsplu::sched::Mapping;
use parsplu::sparse::{relative_residual, CscMatrix};
use std::time::{Duration, Instant};

/// Same pattern, deterministically reshuffled values.
fn revalue(a: &CscMatrix, salt: u64) -> CscMatrix {
    let mut b = a.clone();
    for (t, v) in b.values_mut().iter_mut().enumerate() {
        let wig = (((t as u64).wrapping_mul(salt * 2 + 1) % 101) as f64) / 101.0;
        *v += 0.2 * (wig - 0.5) * (1.0 + v.abs());
    }
    b
}

fn assert_bitwise_equal(x: &BlockMatrix, y: &BlockMatrix, what: &str) {
    assert_eq!(x.num_block_cols(), y.num_block_cols(), "{what}");
    for k in 0..x.num_block_cols() {
        let cx = x.column(k).read();
        let cy = y.column(k).read();
        assert_eq!(cx.pivots, cy.pivots, "{what}: pivots differ at block {k}");
        assert_eq!(
            cx.panel.data(),
            cy.panel.data(),
            "{what}: L panel differs at block {k}"
        );
        assert_eq!(cx.ublocks.len(), cy.ublocks.len(), "{what}: block {k}");
        for (bx, by) in cx.ublocks.iter().zip(cy.ublocks.iter()) {
            assert_eq!(bx.data(), by.data(), "{what}: U block differs at {k}");
        }
    }
}

#[test]
fn refactor_is_bitwise_identical_across_threads_and_mappings() {
    for m in paper_suite(Scale::Reduced).into_iter().take(3) {
        let a2 = revalue(&m.a, 7);
        // Reference: a fresh one-shot factorization of the new values.
        let mut reference = SluSession::analyze(m.a.pattern(), &Options::default()).unwrap();
        reference.factor(&a2).unwrap();
        for threads in [1usize, 2, 4, 8] {
            for mapping in [Mapping::Static1D, Mapping::Dynamic] {
                let opts = Options {
                    threads,
                    mapping,
                    ..Options::default()
                };
                let mut s = SluSession::analyze(m.a.pattern(), &opts).unwrap();
                s.factor(&m.a).unwrap();
                s.refactor(&a2).unwrap();
                assert_bitwise_equal(
                    s.block_matrix().unwrap(),
                    reference.block_matrix().unwrap(),
                    &format!("{} threads={threads} {mapping:?}", m.name),
                );
                let (_, b) = manufactured_rhs(&a2, 3);
                let x = s.try_solve(&b).unwrap();
                assert!(relative_residual(&a2, &x, &b) < 1e-9, "{}", m.name);
            }
        }
    }
}

#[test]
fn refactor_runs_no_symbolic_phase() {
    let m = &paper_suite(Scale::Reduced)[0];
    let mut s = SluSession::analyze(m.a.pattern(), &Options::default()).unwrap();
    s.factor(&m.a).unwrap();
    let obs = ObsSession::new();
    s.refactor_observed(&revalue(&m.a, 3), &obs).unwrap();
    let walls = obs.phase_walls();
    assert!(
        walls
            .iter()
            .any(|(name, secs)| *name == "numeric" && *secs > 0.0),
        "refactor must record numeric time, got {walls:?}"
    );
    for (name, secs) in &walls {
        assert!(
            *name == "numeric",
            "refactor ran symbolic phase `{name}` for {secs}s"
        );
    }
}

#[test]
fn pattern_mismatch_is_a_structured_error_and_nonfatal() {
    let suite = paper_suite(Scale::Reduced);
    let (a, other) = (&suite[0].a, &suite[1].a);
    let mut s = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
    s.factor(a).unwrap();
    match s.refactor(other) {
        Err(LuError::PatternMismatch { expected, got }) => {
            assert_eq!(expected, pattern_hash(a.pattern()));
            assert_eq!(got, pattern_hash(other.pattern()));
        }
        r => panic!("expected PatternMismatch, got {r:?}"),
    }
    // Untouched: the session still factors and solves the right pattern.
    assert!(s.is_factored());
    let a2 = revalue(a, 11);
    s.refactor(&a2).unwrap();
    let (_, b) = manufactured_rhs(&a2, 5);
    let x = s.try_solve(&b).unwrap();
    assert!(relative_residual(&a2, &x, &b) < 1e-9);
}

#[test]
fn deadline_during_refactor_leaves_session_reusable() {
    let m = &paper_suite(Scale::Reduced)[0];
    let a2 = revalue(&m.a, 9);
    let mut s = SluSession::analyze(m.a.pattern(), &Options::default()).unwrap();
    s.factor(&m.a).unwrap();
    // An already-expired deadline trips before the first task.
    s.set_budget(RunBudget {
        deadline: Some(Instant::now() - Duration::from_millis(10)),
        ..RunBudget::default()
    });
    match s.refactor(&a2) {
        Err(LuError::DeadlineExceeded { .. }) => {}
        r => panic!("expected DeadlineExceeded, got {r:?}"),
    }
    assert!(!s.is_factored());
    assert!(matches!(
        s.try_solve(&vec![0.0; m.a.ncols()]),
        Err(LuError::NotFactored)
    ));
    // Lift the budget: the session recovers, bitwise identical to fresh.
    s.set_budget(RunBudget::unbounded());
    s.refactor(&a2).unwrap();
    let mut fresh = SluSession::analyze(m.a.pattern(), &Options::default()).unwrap();
    fresh.factor(&a2).unwrap();
    assert_bitwise_equal(
        s.block_matrix().unwrap(),
        fresh.block_matrix().unwrap(),
        "after deadline recovery",
    );
}

#[test]
fn cancel_during_refactor_leaves_session_reusable() {
    use parsplu::core::CancelToken;
    let m = &paper_suite(Scale::Reduced)[0];
    let a2 = revalue(&m.a, 13);
    let mut s = SluSession::analyze(m.a.pattern(), &Options::default()).unwrap();
    s.factor(&m.a).unwrap();
    let token = CancelToken::new();
    token.cancel_after_checkpoints(2);
    s.set_budget(RunBudget {
        token: Some(token),
        ..RunBudget::default()
    });
    match s.refactor(&a2) {
        Err(LuError::Cancelled { .. }) => {}
        r => panic!("expected Cancelled, got {r:?}"),
    }
    assert!(!s.is_factored());
    s.set_budget(RunBudget::unbounded());
    s.refactor(&a2).unwrap();
    let (_, b) = manufactured_rhs(&a2, 7);
    let x = s.try_solve(&b).unwrap();
    assert!(relative_residual(&a2, &x, &b) < 1e-9);
}

#[test]
fn sparse_lu_is_a_session_wrapper_with_fallible_solves() {
    let m = &paper_suite(Scale::Reduced)[0];
    let lu = parsplu::core::SparseLu::factor(&m.a, &Options::default()).unwrap();
    assert!(lu.session().is_factored());
    let n = m.a.ncols();
    let (_, b) = manufactured_rhs(&m.a, 29);
    let x = lu.try_solve(&b).unwrap();
    assert!(relative_residual(&m.a, &x, &b) < 1e-10);
    assert!(matches!(
        lu.try_solve(&b[..n - 1]),
        Err(LuError::DimensionMismatch {
            got,
            expected
        }) if got == n - 1 && expected == n
    ));
    assert!(lu.try_solve_transposed(&vec![0.0; n + 1]).is_err());
    assert!(lu.try_solve_many(&vec![0.0; 2 * n + 1], 2).is_err());
    assert!(lu.try_solve_many(&vec![0.0; 2 * n], 2).is_ok());
}

#[test]
fn options_builder_validates() {
    let opts = Options::builder()
        .threads(3)
        .front_threads(2)
        .equilibrate(true)
        .build()
        .unwrap();
    assert_eq!(opts.threads, 3);
    assert_eq!(opts.front_threads, 2);
    assert!(opts.equilibrate);
    let default_built = OptionsBuilder::default().build().unwrap();
    assert_eq!(default_built, Options::default());
    for bad in [
        Options::builder().threads(0).build(),
        Options::builder().front_threads(0).build(),
        Options::builder().pivot_threshold(-1.0).build(),
        Options::builder().pivot_threshold(f64::NAN).build(),
        Options::builder()
            .pivot_rule(parsplu::core::PivotRule::Threshold(1.5))
            .build(),
        Options::builder()
            .breakdown(parsplu::core::BreakdownPolicy::Perturb { eps: -1e-8 })
            .build(),
    ] {
        assert!(
            matches!(bad, Err(LuError::InvalidOptions { .. })),
            "{bad:?}"
        );
    }
}

#[test]
fn factor_then_many_refactors_stay_consistent() {
    let m = &paper_suite(Scale::Reduced)[1];
    let opts = Options::builder().threads(2).build().unwrap();
    let mut s = SluSession::analyze(m.a.pattern(), &opts).unwrap();
    for step in 0..5u64 {
        let vals = revalue(&m.a, step);
        s.refactor(&vals).unwrap();
        let (_, b) = manufactured_rhs(&vals, step + 31);
        let (x, iters) = s.solve_refined(&vals, &b, 1e-12, 3).unwrap();
        assert!(iters <= 3);
        assert!(
            relative_residual(&vals, &x, &b) < 1e-10,
            "step {step}: residual too large"
        );
    }
}
