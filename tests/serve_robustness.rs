//! Robustness tests for the serve daemon: malformed-input fuzzing, frame
//! faults, session eviction under a memory budget, overload backpressure,
//! socket transport, and graceful shutdown.

use parsplu::cli::run;
use parsplu::serve::{
    serve_daemon, serve_loop_with, Engine, Listener, Reply, ServeConfig, Submitted,
};
use proptest::prelude::*;
use splu_bench::json::parse;
use std::io::{BufRead, BufReader, Cursor, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("parsplu_srv_{name}_{}.mtx", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// Generates a reduced benchmark matrix file and returns its path.
fn gen_matrix(name: &str) -> String {
    let path = tmp(name);
    run(&args(&["gen", "goodwin", &path, "--reduced"])).unwrap();
    path
}

/// Runs `f` on its own thread and fails the test if it does not finish
/// within `limit` — the suite's hang detector.
fn with_timeout<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(limit)
        .expect("serve loop exceeded the test-side timeout (hang?)")
}

/// Drives a script through the stdio loop, returning the response lines.
fn run_script(cfg: ServeConfig, script: String) -> Vec<String> {
    with_timeout(Duration::from_secs(120), move || {
        let writer = Mutex::new(Vec::new());
        serve_loop_with(cfg, Cursor::new(script), &writer, None).unwrap();
        String::from_utf8(writer.into_inner().unwrap())
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    })
}

const ERROR_KINDS: &[&str] = &[
    "bad_request",
    "numeric",
    "worker_panic",
    "deadline",
    "stalled",
    "session_evicted",
    "overloaded",
    "shutting_down",
    "cancelled",
    "oversize_frame",
    "invalid_frame",
    "idle_timeout",
    "duplicate_replay",
    "journal_corrupt",
    "error",
];

/// The number of responses [`serve_loop_with`] owes a script: one per
/// non-blank, non-comment line up to (not including) `quit`, with
/// `shutdown` acknowledged and terminal.
fn expected_responses(script: &str) -> usize {
    let mut n = 0;
    for line in script.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if t == "quit" {
            break;
        }
        n += 1;
        if t.split_whitespace().next() == Some("shutdown") {
            break;
        }
    }
    n
}

fn arb_line() -> impl Strategy<Value = String> {
    (0usize..12, 0usize..3).prop_map(|(kind, s)| {
        let sess = ["alpha", "beta", "gamma"][s];
        match kind {
            0 => format!("analyze {sess} /nonexistent/matrix.mtx"),
            1 => format!("factor {sess} /nonexistent/values.mtx"),
            2 => format!("solve {sess}"),
            3 => format!("solve {sess} --refine --transpose"),
            4 => "analyze".to_string(),       // missing session name
            5 => "factor lonely".to_string(), // missing values path
            6 => format!("frobnicate {sess} what"), // unknown op
            7 => String::new(),               // blank: skipped
            8 => "# a comment line".to_string(), // comment: skipped
            9 => format!("solve {sess} --bogus-flag"),
            10 => "stats".to_string(),        // control op
            11 => format!("refactor {sess}"), // truncated
            _ => unreachable!(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Malformed, truncated, and interleaved job lines never panic or
    /// hang the loop, and every job line gets exactly one parseable JSON
    /// response with a stable error taxonomy.
    #[test]
    fn fuzzed_job_lines_get_exactly_one_structured_response(
        lines in proptest::collection::vec(arb_line(), 1..40),
        workers in 1usize..4,
    ) {
        let script = format!("{}\nquit\n", lines.join("\n"));
        let cfg = ServeConfig { workers, ..ServeConfig::default() };
        let responses = run_script(cfg, script.clone());
        prop_assert_eq!(
            responses.len(),
            expected_responses(&script),
            "one response per job line: {:?}",
            responses
        );
        let mut ids = std::collections::HashSet::new();
        for l in &responses {
            let v = parse(l).expect("each response is one-line JSON");
            let id = v.get("id").and_then(|i| i.as_num()).expect("id") as u64;
            prop_assert!(ids.insert(id), "duplicate response id in {:?}", responses);
            let status = v.get("status").and_then(|s| s.as_str()).expect("status");
            match status {
                "ok" => {}
                "error" => {
                    let kind = v.get("kind").and_then(|k| k.as_str()).expect("kind");
                    prop_assert!(
                        ERROR_KINDS.contains(&kind),
                        "unknown error kind {} in {}", kind, l
                    );
                    let code = v.get("exit_code").and_then(|c| c.as_num()).expect("exit_code");
                    prop_assert!(code >= 2.0, "{}", l);
                }
                other => prop_assert!(false, "bad status {} in {}", other, l),
            }
        }
    }
}

#[test]
fn oversize_and_nul_frames_are_rejected_and_the_stream_resyncs() {
    let path = gen_matrix("frames");
    let long = "x".repeat(4096);
    let script = format!("{long}\nanalyze g {path}\nbad\0frame g\nsolve missing\nquit\n");
    let cfg = ServeConfig {
        workers: 1,
        max_line_bytes: 512,
        ..ServeConfig::default()
    };
    let responses = run_script(cfg, script);
    // Frame faults are answered inline by the feeder while job responses
    // come back from the workers, so assert by content, not by position.
    assert_eq!(responses.len(), 4, "{responses:?}");
    let v: Vec<_> = responses.iter().map(|l| parse(l).unwrap()).collect();
    let kind =
        |r: &splu_bench::json::Json| r.get("kind").and_then(|k| k.as_str()).map(String::from);
    let oversize = v
        .iter()
        .find(|r| kind(r).as_deref() == Some("oversize_frame"))
        .unwrap_or_else(|| panic!("no oversize_frame in {responses:?}"));
    assert_eq!(
        oversize.get("exit_code").and_then(|c| c.as_num()),
        Some(2.0)
    );
    assert_eq!(oversize.get("bytes").and_then(|b| b.as_num()), Some(4096.0));
    assert!(
        v.iter()
            .any(|r| kind(r).as_deref() == Some("invalid_frame")),
        "no invalid_frame in {responses:?}"
    );
    // The stream resynced around both faults: the analyze between them
    // ran normally, and the loop stayed alive for the last bad job.
    let analyze = v
        .iter()
        .find(|r| r.get("op").and_then(|o| o.as_str()) == Some("analyze"))
        .unwrap_or_else(|| panic!("no analyze response in {responses:?}"));
    assert_eq!(
        analyze.get("status").and_then(|s| s.as_str()),
        Some("ok"),
        "{responses:?}"
    );
    assert!(
        v.iter().any(|r| kind(r).as_deref() == Some("bad_request")),
        "no bad_request in {responses:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sessions_evict_under_the_budget_and_revive_on_reanalyze() {
    let path = gen_matrix("evict");
    // Pass 1 (no budget): learn the resident footprint of one fully
    // factored session from the factor response.
    let script = format!("analyze a {path}\nfactor a {path}\nquit\n");
    let responses = run_script(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        script,
    );
    let factored_bytes = parse(&responses[1])
        .unwrap()
        .get("resident_bytes")
        .and_then(|b| b.as_num())
        .expect("factor responses report resident_bytes") as u64;
    assert!(factored_bytes > 0);

    // Pass 2: a budget that fits one factored session but not two.
    // workers=1 keeps cross-session ordering deterministic.
    let budget = factored_bytes + factored_bytes / 2;
    let script = format!(
        "analyze a {path}\nfactor a {path}\nsolve a\n\
         analyze b {path}\nfactor b {path}\nsolve b\n\
         solve a\n\
         analyze a {path}\nfactor a {path}\nsolve a\nquit\n"
    );
    let cfg = ServeConfig {
        workers: 1,
        session_budget: Some(budget),
        ..ServeConfig::default()
    };
    let responses = run_script(cfg, script);
    assert_eq!(responses.len(), 10, "{responses:?}");
    let v: Vec<_> = responses.iter().map(|l| parse(l).unwrap()).collect();
    // Jobs 1-6 all succeed (factor b evicts the idle session a).
    for (i, r) in v.iter().take(6).enumerate() {
        assert_eq!(
            r.get("status").and_then(|s| s.as_str()),
            Some("ok"),
            "job {i}: {}",
            responses[i]
        );
    }
    // Job 7 (`solve a`) finds its session evicted: structured error,
    // exit code 7, stable kind, and a pointer to re-analyze.
    let evicted = &v[6];
    assert_eq!(
        evicted.get("status").and_then(|s| s.as_str()),
        Some("error")
    );
    assert_eq!(
        evicted.get("kind").and_then(|k| k.as_str()),
        Some("session_evicted"),
        "{}",
        responses[6]
    );
    assert_eq!(evicted.get("exit_code").and_then(|c| c.as_num()), Some(7.0));
    assert!(responses[6].contains("re-analyze"), "{}", responses[6]);
    // Jobs 8-10: re-analyzing revives the name and solves again.
    for (i, r) in v.iter().enumerate().skip(7) {
        assert_eq!(
            r.get("status").and_then(|s| s.as_str()),
            Some("ok"),
            "job {i}: {}",
            responses[i]
        );
    }
    // Bitwise reproducibility across the eviction: both `solve a` hashes
    // for the same values must agree.
    let h1 = v[2]
        .get("x_hash")
        .and_then(|h| h.as_str())
        .unwrap()
        .to_string();
    let h3 = v[9]
        .get("x_hash")
        .and_then(|h| h.as_str())
        .unwrap()
        .to_string();
    assert_eq!(h1, h3, "solve after re-analyze is bitwise identical");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn full_lanes_reject_with_queue_depth_and_retry_hint() {
    // Drive the engine directly with no workers running: pushes stay
    // queued, so the overload path is deterministic.
    let engine = Engine::new(ServeConfig {
        workers: 1,
        queue_cap: 2,
        ..ServeConfig::default()
    });
    let out: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let reply: Reply<'_> = {
        let out = Arc::clone(&out);
        Arc::new(move |s: &str| {
            out.lock().unwrap().push(s.to_string());
            true
        })
    };
    assert_eq!(engine.submit("solve s1", &reply, None), Submitted::Queued);
    assert_eq!(engine.submit("solve s1", &reply, None), Submitted::Queued);
    // Lane full: the third job is refused with a structured error.
    assert_eq!(engine.submit("solve s1", &reply, None), Submitted::Rejected);
    let lines = out.lock().unwrap().clone();
    assert_eq!(lines.len(), 1, "{lines:?}");
    let v = parse(&lines[0]).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("error"));
    assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("overloaded"));
    assert_eq!(v.get("exit_code").and_then(|c| c.as_num()), Some(8.0));
    assert_eq!(v.get("queue_depth").and_then(|d| d.as_num()), Some(2.0));
    assert!(
        v.get("retry_after_hint").and_then(|h| h.as_num()).unwrap() > 0.0,
        "{lines:?}"
    );
    assert_eq!(v.get("id").and_then(|i| i.as_num()), Some(3.0));
    // Draining refuses with its own kind.
    engine.begin_drain();
    assert_eq!(engine.submit("solve s1", &reply, None), Submitted::Rejected);
    let lines = out.lock().unwrap().clone();
    let v = parse(&lines[1]).unwrap();
    assert_eq!(
        v.get("kind").and_then(|k| k.as_str()),
        Some("shutting_down")
    );
    assert_eq!(v.get("exit_code").and_then(|c| c.as_num()), Some(8.0));
}

#[test]
fn shutdown_drains_queued_jobs_then_acks_last() {
    let path = gen_matrix("drain");
    let script = format!("analyze g {path}\nfactor g {path}\nsolve g\nshutdown\nsolve g\nquit\n");
    let responses = run_script(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        script,
    );
    // analyze+factor+solve+ack; the post-shutdown solve is never read.
    assert_eq!(responses.len(), 4, "{responses:?}");
    for l in &responses[..3] {
        let v = parse(l).unwrap();
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"), "{l}");
    }
    // The acknowledgement is the LAST line: it flushes only after every
    // queued job's response.
    let ack = parse(&responses[3]).unwrap();
    assert_eq!(ack.get("op").and_then(|o| o.as_str()), Some("shutdown"));
    assert_eq!(ack.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert_eq!(ack.get("drained").and_then(|d| d.as_bool()), Some(true));
    let _ = std::fs::remove_file(&path);
}

/// A line-oriented test client against a daemon socket.
struct Client {
    stream: std::net::TcpStream,
    reader: BufReader<std::net::TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").unwrap();
        self.stream.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "daemon closed the connection early");
        line.trim_end().to_string()
    }
}

#[test]
fn tcp_daemon_multiplexes_clients_and_survives_disconnects() {
    let path = gen_matrix("tcp");
    let listener = Listener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr_string();
    let cfg = ServeConfig {
        workers: 2,
        max_line_bytes: 1024,
        ..ServeConfig::default()
    };
    let daemon = std::thread::spawn(move || serve_daemon(cfg, listener, None).unwrap());

    // Client 1 builds a session and solves over the wire.
    let mut c1 = Client::connect(&addr);
    c1.send(&format!("analyze s1 {path}"));
    let v = parse(&c1.recv()).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    c1.send(&format!("factor s1 {path}"));
    let v = parse(&c1.recv()).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    c1.send("solve s1");
    let r1 = c1.recv();
    let v = parse(&r1).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    let hash_wire = v
        .get("x_hash")
        .and_then(|h| h.as_str())
        .unwrap()
        .to_string();

    // Client 2 shares the daemon: errors are structured, sessions are
    // daemon-global (it can solve client 1's session), and an oversize
    // frame only costs one error line.
    let mut c2 = Client::connect(&addr);
    c2.send("solve nosuch");
    let v = parse(&c2.recv()).unwrap();
    assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("bad_request"));
    c2.send("solve s1");
    let v = parse(&c2.recv()).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert_eq!(
        v.get("x_hash").and_then(|h| h.as_str()),
        Some(hash_wire.as_str()),
        "solves are bitwise identical across clients"
    );
    c2.send(&"y".repeat(2048));
    let v = parse(&c2.recv()).unwrap();
    assert_eq!(
        v.get("kind").and_then(|k| k.as_str()),
        Some("oversize_frame")
    );

    // Client 3 queues a job and vanishes mid-stream: the daemon keeps
    // serving everyone else.
    {
        let mut c3 = Client::connect(&addr);
        c3.send(&format!("refactor s1 {path}"));
        // Dropped here without reading the response.
    }
    std::thread::sleep(Duration::from_millis(400));
    // The disconnect may have cancelled the refactor mid-job; either way
    // the session stays usable: a fresh factor + solve reproduces the
    // original bits.
    c1.send(&format!("factor s1 {path}"));
    let v = parse(&c1.recv()).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    c1.send("solve s1");
    let v = parse(&c1.recv()).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert_eq!(
        v.get("x_hash").and_then(|h| h.as_str()),
        Some(hash_wire.as_str()),
        "recovered session solves bitwise identically"
    );
    c1.send("stats");
    let v = parse(&c1.recv()).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert!(
        v.get("connections_dropped")
            .and_then(|c| c.as_num())
            .unwrap()
            >= 1.0,
        "the dropped client was counted"
    );

    // Shutdown from client 1 drains and acks; the daemon exits.
    c1.send("shutdown");
    let ack = parse(&c1.recv()).unwrap();
    assert_eq!(ack.get("op").and_then(|o| o.as_str()), Some("shutdown"));
    assert_eq!(ack.get("drained").and_then(|d| d.as_bool()), Some(true));
    let summary = daemon.join().unwrap();
    assert!(summary.jobs >= 8, "{summary:?}");
    assert_eq!(summary.connections, 3);
    let _ = std::fs::remove_file(&path);
}

fn tmp_state_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("parsplu_srv_state_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn duplicate_job_ids_return_the_cached_response_verbatim() {
    let path = gen_matrix("dedup");
    // workers=1 keeps the lane FIFO, so the duplicate factor is checked
    // only after the original was applied and its response cached.
    let script = format!(
        "analyze a {path} --job-id j-a\nfactor a {path} --job-id j-f\n\
         factor a {path} --job-id j-f\nsolve a\nquit\n"
    );
    let responses = run_script(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        script,
    );
    assert_eq!(responses.len(), 4, "{responses:?}");
    for l in &responses {
        let v = parse(l).unwrap();
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"), "{l}");
    }
    // The retried duplicate is the original response byte for byte —
    // including the original response id, which a re-execution could
    // never reproduce (ids are strictly increasing).
    assert_eq!(
        responses[1], responses[2],
        "duplicate --job-id must replay the cached response"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn journal_replays_sessions_bitwise_identically_across_restarts() {
    let path = gen_matrix("revive");
    let state = tmp_state_dir("revive");
    let cfg = || ServeConfig {
        workers: 1,
        state_dir: Some(state.clone()),
        ..ServeConfig::default()
    };
    // Run 1: build a session, record the solve bits, exit (no shutdown —
    // the journal must not depend on a graceful drain).
    let script = format!("analyze a {path}\nfactor a {path}\nsolve a\nquit\n");
    let responses = run_script(cfg(), script);
    assert_eq!(responses.len(), 3, "{responses:?}");
    let hash = parse(&responses[2])
        .unwrap()
        .get("x_hash")
        .and_then(|h| h.as_str())
        .expect("solve reports x_hash")
        .to_string();

    // Run 2: a fresh engine on the same state dir revives the session
    // from the journal alone — no analyze, no factor — and solves to the
    // exact same bits.
    let responses = run_script(cfg(), "solve a\nstats\nquit\n".to_string());
    assert_eq!(responses.len(), 2, "{responses:?}");
    // `stats` is answered inline by the feeder while `solve` rides a
    // worker lane, so match the two responses by op, not by position.
    let parsed: Vec<_> = responses.iter().map(|l| parse(l).unwrap()).collect();
    let by_op = |op: &str| {
        parsed
            .iter()
            .find(|v| v.get("op").and_then(|o| o.as_str()) == Some(op))
            .unwrap_or_else(|| panic!("no {op} response in {responses:?}"))
    };
    let v = by_op("solve");
    assert_eq!(
        v.get("status").and_then(|s| s.as_str()),
        Some("ok"),
        "{responses:?}"
    );
    assert_eq!(
        v.get("x_hash").and_then(|h| h.as_str()),
        Some(hash.as_str()),
        "replayed session must solve bitwise identically"
    );
    let stats = by_op("stats");
    assert_eq!(
        stats.get("sessions_replayed").and_then(|n| n.as_num()),
        Some(1.0),
        "{responses:?}"
    );
    assert_eq!(
        stats.get("durability").and_then(|d| d.as_str()),
        Some("strict")
    );
    assert!(stats.get("journal_bytes").and_then(|n| n.as_num()).unwrap() > 0.0);
    assert!(stats.get("uptime_s").and_then(|n| n.as_num()).unwrap() >= 0.0);
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn applied_ids_without_cached_responses_refuse_with_exit_9() {
    use parsplu::persist::{Durability, Journal, Record};
    let path = gen_matrix("exit9");
    let state = tmp_state_dir("exit9");
    // Hand-build the journal a compaction would leave behind: the job
    // lines that rebuild the session, plus an applied-ids record whose
    // cached responses are gone.
    {
        let (journal, recovered) = Journal::open(&state, Durability::Strict).unwrap();
        assert!(recovered.records.is_empty());
        journal
            .append(&Record::Job {
                job_id: None,
                line: format!("analyze a {path}"),
            })
            .unwrap();
        journal
            .append(&Record::Job {
                job_id: None,
                line: format!("factor a {path}"),
            })
            .unwrap();
        journal
            .append(&Record::AppliedIds {
                session: "a".to_string(),
                ids: vec!["old-77".to_string()],
            })
            .unwrap();
    }
    // A retry of the pre-compaction job id is recognized as applied, but
    // there is no response to replay: structured refusal, exit code 9.
    let script = format!("refactor a {path} --job-id old-77\nsolve a\nquit\n");
    let responses = run_script(
        ServeConfig {
            workers: 1,
            state_dir: Some(state.clone()),
            ..ServeConfig::default()
        },
        script,
    );
    assert_eq!(responses.len(), 2, "{responses:?}");
    let v = parse(&responses[0]).unwrap();
    assert_eq!(
        v.get("kind").and_then(|k| k.as_str()),
        Some("duplicate_replay"),
        "{responses:?}"
    );
    assert_eq!(v.get("exit_code").and_then(|c| c.as_num()), Some(9.0));
    assert_eq!(v.get("job_id").and_then(|j| j.as_str()), Some("old-77"));
    // The session itself is alive and was NOT double-applied: the solve
    // still works off the replayed factorization.
    let solved = parse(&responses[1]).unwrap();
    assert_eq!(
        solved.get("status").and_then(|s| s.as_str()),
        Some("ok"),
        "{responses:?}"
    );
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn overload_hints_are_jittered_within_bounds() {
    // No workers are running, so submissions stay queued and every
    // overflow rejection is deterministic.
    let engine = Engine::new(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    });
    let out: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let reply: Reply<'_> = {
        let out = Arc::clone(&out);
        Arc::new(move |s: &str| {
            out.lock().unwrap().push(s.to_string());
            true
        })
    };
    assert_eq!(engine.submit("solve s1", &reply, None), Submitted::Queued);
    let mut hints = Vec::new();
    for _ in 0..16 {
        assert_eq!(engine.submit("solve s1", &reply, None), Submitted::Rejected);
        let line = out.lock().unwrap().pop().unwrap();
        let hint = parse(&line)
            .unwrap()
            .get("retry_after_hint")
            .and_then(|h| h.as_num())
            .unwrap();
        hints.push(hint);
    }
    // With an empty service-time EWMA the base hint is 0.05s; the ±25%
    // jitter keeps every sample strictly positive and inside the band.
    for &h in &hints {
        assert!(h > 0.0, "{hints:?}");
        assert!((0.0375..=0.0625).contains(&h), "{hints:?}");
    }
    let distinct: std::collections::HashSet<String> =
        hints.iter().map(|h| format!("{h:.6}")).collect();
    assert!(
        distinct.len() > 1,
        "hints must be jittered, not constant: {hints:?}"
    );
}

#[test]
fn idle_timeout_reports_a_buffered_partial_frame_before_closing() {
    let listener = Listener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr_string();
    let cfg = ServeConfig {
        workers: 1,
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    };
    let daemon = std::thread::spawn(move || serve_daemon(cfg, listener, None).unwrap());

    // Send half a line — no newline — and go quiet.
    let mut c = Client::connect(&addr);
    write!(c.stream, "solve s").unwrap();
    c.stream.flush().unwrap();
    // The daemon idles out: first a structured invalid_frame naming the
    // buffered fragment, then the idle notice, then the close.
    let partial = parse(&c.recv()).unwrap();
    assert_eq!(
        partial.get("kind").and_then(|k| k.as_str()),
        Some("invalid_frame"),
        "partial-frame response first"
    );
    assert_eq!(partial.get("bytes").and_then(|b| b.as_num()), Some(7.0));
    assert!(
        partial
            .get("error")
            .and_then(|e| e.as_str())
            .unwrap()
            .contains("partial frame"),
        "{partial:?}"
    );
    let idle = parse(&c.recv()).unwrap();
    assert_eq!(
        idle.get("kind").and_then(|k| k.as_str()),
        Some("idle_timeout")
    );
    let mut rest = String::new();
    assert_eq!(
        c.reader.read_line(&mut rest).unwrap(),
        0,
        "connection closed after the idle notice"
    );

    // The daemon survives and still serves fresh connections.
    let mut c2 = Client::connect(&addr);
    c2.send("shutdown");
    let ack = parse(&c2.recv()).unwrap();
    assert_eq!(ack.get("drained").and_then(|d| d.as_bool()), Some(true));
    daemon.join().unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_daemon_round_trips_and_cleans_up() {
    use std::os::unix::net::UnixStream;
    let path = gen_matrix("unixsock");
    let sock = std::env::temp_dir()
        .join(format!("parsplu_srv_{}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let listener = Listener::bind(&format!("unix:{sock}")).unwrap();
    let cfg = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let daemon = {
        let _sockpath = sock.clone();
        std::thread::spawn(move || serve_daemon(cfg, listener, None).unwrap())
    };
    let stream = UnixStream::connect(&sock).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut w = stream.try_clone().unwrap();
    writeln!(w, "analyze u {path}").unwrap();
    writeln!(w, "factor u {path}").unwrap();
    writeln!(w, "solve u").unwrap();
    writeln!(w, "shutdown").unwrap();
    w.flush().unwrap();
    let mut lines = Vec::new();
    for _ in 0..4 {
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        lines.push(l.trim_end().to_string());
    }
    for l in &lines[..3] {
        let v = parse(l).unwrap();
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"), "{l}");
    }
    let ack = parse(&lines[3]).unwrap();
    assert_eq!(ack.get("drained").and_then(|d| d.as_bool()), Some(true));
    daemon.join().unwrap();
    assert!(
        !std::path::Path::new(&sock).exists(),
        "socket path is unlinked on listener drop"
    );
    let _ = std::fs::remove_file(&path);
}
