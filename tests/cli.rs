//! Integration tests for the `parsplu` command-line interface.

use parsplu::cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("parsplu_cli_{name}_{}.mtx", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn help_and_empty_args() {
    assert!(run(&args(&["--help"])).unwrap().contains("USAGE"));
    let err = run(&[]).unwrap_err();
    assert!(err.message.contains("USAGE"));
    assert_eq!(err.exit_code, 2);
    assert!(run(&args(&["frobnicate"]))
        .unwrap_err()
        .message
        .contains("unknown"));
}

#[test]
fn gen_analyze_solve_condest_roundtrip() {
    let path = tmp("roundtrip");
    let out = run(&args(&["gen", "orsreg1", &path, "--reduced"])).unwrap();
    assert!(out.contains("wrote"), "{out}");

    let out = run(&args(&["analyze", &path])).unwrap();
    assert!(out.contains("supernodes"), "{out}");
    assert!(out.contains("task graph"), "{out}");

    let out = run(&args(&["solve", &path])).unwrap();
    assert!(out.contains("scaled residual"), "{out}");
    assert!(!out.contains("WARNING"), "{out}");

    let out = run(&args(&[
        "solve",
        &path,
        "--threads",
        "2",
        "--graph",
        "sstar",
    ]))
    .unwrap();
    assert!(out.contains("scaled residual"), "{out}");

    let out = run(&args(&["solve", &path, "--transpose", "--equilibrate"])).unwrap();
    assert!(out.contains("scaled residual"), "{out}");

    let out = run(&args(&["solve", &path, "--refine", "--no-postorder"])).unwrap();
    assert!(out.contains("scaled residual"), "{out}");

    let out = run(&args(&["condest", &path])).unwrap();
    assert!(out.contains("cond_1"), "{out}");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn front_threads_leave_the_analysis_invariant() {
    // `analyze` output is pure statistics (no timings), so the threaded
    // front half must reproduce it byte for byte: the parallel symbolic
    // fill and postorder are bitwise identical to the sequential path.
    let path = tmp("frontthreads");
    run(&args(&["gen", "saylr4", &path, "--reduced"])).unwrap();
    let base = run(&args(&["analyze", &path])).unwrap();
    for threads in ["2", "4", "8"] {
        let out = run(&args(&["analyze", &path, "--front-threads", threads])).unwrap();
        assert_eq!(base, out, "--front-threads {threads}");
    }
    let out = run(&args(&["solve", &path, "--front-threads", "4"])).unwrap();
    assert!(out.contains("scaled residual"), "{out}");
    for bad in ["0", "-1", "x"] {
        let err = run(&args(&["analyze", &path, "--front-threads", bad])).unwrap_err();
        assert_eq!(err.exit_code, 2, "{bad}: {err}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn kernel_choice_is_accepted_and_solution_invariant() {
    let path = tmp("kernels");
    run(&args(&["gen", "saylr4", &path, "--reduced"])).unwrap();
    let solve = |choice: &str| {
        let out = tmp(&format!("kernels_x_{choice}"));
        run(&args(&["solve", &path, "--kernels", choice, "--out", &out])).unwrap();
        let x = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        x
    };
    let portable = solve("portable");
    // Bitwise identity of the printed solution under every kernel choice
    // (simd/auto fall back to portable without the `simd` cargo feature;
    // with it, the SIMD tables must reproduce the same bits).
    assert_eq!(portable, solve("simd"));
    assert_eq!(portable, solve("auto"));
    assert!(run(&args(&["solve", &path, "--kernels", "avx9000"]))
        .unwrap_err()
        .message
        .contains("unknown kernel choice"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flag_errors_are_reported() {
    let path = tmp("flags");
    run(&args(&["gen", "sherman5", &path, "--reduced"])).unwrap();
    assert!(run(&args(&["solve", &path, "--graph", "bogus"]))
        .unwrap_err()
        .message
        .contains("unknown graph"));
    assert!(run(&args(&["solve", &path, "--threads"]))
        .unwrap_err()
        .message
        .contains("needs a value"));
    assert!(run(&args(&["solve", &path, "--wat"]))
        .unwrap_err()
        .message
        .contains("unknown option"));
    assert!(run(&args(&["gen", "nosuch", &path]))
        .unwrap_err()
        .message
        .contains("unknown matrix"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn solve_with_rhs_and_out_files() {
    let path = tmp("rhsout");
    run(&args(&["gen", "sherman3", &path, "--reduced"])).unwrap();
    // Build an RHS file of the right length by reading the matrix header.
    let n = {
        let text = std::fs::read_to_string(&path).unwrap();
        let size_line = text.lines().nth(1).unwrap();
        size_line
            .split_whitespace()
            .next()
            .unwrap()
            .parse::<usize>()
            .unwrap()
    };
    let rhs_path = format!("{path}.rhs");
    let out_path = format!("{path}.x");
    let rhs_text: String = (0..n)
        .map(|i| format!("{}\n", (i % 5) as f64 - 2.0))
        .collect();
    std::fs::write(&rhs_path, &rhs_text).unwrap();
    let out = run(&args(&[
        "solve", &path, "--rhs", &rhs_path, "--out", &out_path,
    ]))
    .unwrap();
    assert!(out.contains("wrote solution"), "{out}");
    assert!(out.contains("determinant"), "{out}");
    assert!(out.contains("growth factor"), "{out}");
    let x: Vec<f64> = std::fs::read_to_string(&out_path)
        .unwrap()
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(x.len(), n);
    // Wrong-length RHS must error.
    std::fs::write(&rhs_path, "1.0\n2.0\n").unwrap();
    assert!(run(&args(&["solve", &path, "--rhs", &rhs_path]))
        .unwrap_err()
        .message
        .contains("expected"));
    for f in [path, rhs_path, out_path] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn analyze_writes_dot_files() {
    let path = tmp("dot");
    run(&args(&["gen", "orsreg1", &path, "--reduced"])).unwrap();
    let df = format!("{path}.forest.dot");
    let dg = format!("{path}.graph.dot");
    let out = run(&args(&[
        "analyze",
        &path,
        "--dot-forest",
        &df,
        "--dot-graph",
        &dg,
    ]))
    .unwrap();
    assert!(out.contains("wrote block eforest DOT"));
    let forest = std::fs::read_to_string(&df).unwrap();
    assert!(forest.starts_with("digraph"));
    let graph = std::fs::read_to_string(&dg).unwrap();
    assert!(graph.contains("\"F(0)\""));
    for f in [path, df, dg] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn breakdown_policy_through_the_cli() {
    // A matrix whose column 5 has an exactly-zero diagonal and no entries
    // above it: diagonal-rule pivoting in natural order must break down
    // there, and the two policies must respond per the documented exit
    // codes.
    let path = tmp("breakdown");
    let a = parsplu::matgen::tiny_pivot_matrix(16, &[5], 0.0, 3);
    parsplu::sparse::io::write_matrix_market(&a, std::path::Path::new(&path)).unwrap();
    let base = [
        "solve",
        path.as_str(),
        "--rule",
        "diagonal",
        "--ordering",
        "natural",
        "--no-postorder",
    ];

    // Default policy (and explicit `--breakdown error`): numerical failure,
    // exit code 3, naming the breakdown column.
    for extra in [&[][..], &["--breakdown", "error"][..]] {
        let mut cmd = base.to_vec();
        cmd.extend_from_slice(extra);
        let err = run(&args(&cmd)).unwrap_err();
        assert_eq!(err.exit_code, 3, "{err}");
        assert!(err.message.contains("column 5"), "{err}");
    }

    // Perturbation policy: completes, reports the perturbation, and the
    // auto-refined solve reaches a small residual (no WARNING line).
    for policy in ["perturb", "perturb:1e-6"] {
        let mut cmd = base.to_vec();
        cmd.extend_from_slice(&["--breakdown", policy]);
        let out = run(&args(&cmd)).unwrap();
        assert!(out.contains("pivot perturbations: 1 column(s)"), "{out}");
        assert!(out.contains("condest (perturbed)"), "{out}");
        assert!(!out.contains("WARNING"), "{policy}: {out}");
    }

    // Flag-parsing errors stay usage errors (exit code 2).
    for bad in ["bogus", "perturb:-1.0", "perturb:x"] {
        let err = run(&args(&["solve", &path, "--breakdown", bad])).unwrap_err();
        assert_eq!(err.exit_code, 2, "{bad}: {err}");
    }
    // Partial pivoting sails through the same matrix without perturbing.
    let out = run(&args(&["solve", &path, "--breakdown", "perturb"])).unwrap();
    assert!(!out.contains("pivot perturbations"), "{out}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn structural_singularity_exits_with_code_3() {
    let path = tmp("singular");
    // Column 2 of 2 is empty: no transversal exists.
    std::fs::write(
        &path,
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 1 1.0\n",
    )
    .unwrap();
    let err = run(&args(&["solve", &path])).unwrap_err();
    assert_eq!(err.exit_code, 3, "{err}");
    assert!(err.message.contains("singular"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn malformed_matrix_file_exits_with_code_2_and_names_the_line() {
    let path = tmp("malformed");
    std::fs::write(
        &path,
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n",
    )
    .unwrap();
    let err = run(&args(&["solve", &path])).unwrap_err();
    assert_eq!(err.exit_code, 2, "{err}");
    assert!(
        err.message.contains("line 3") && err.message.contains("non-finite"),
        "{err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_file_is_an_error() {
    let err = run(&args(&["analyze", "/nonexistent/x.mtx"])).unwrap_err();
    assert!(err.message.contains("reading"), "{err}");
    assert_eq!(err.exit_code, 2);
}

#[test]
fn all_orderings_work_through_the_cli() {
    let path = tmp("ord");
    run(&args(&["gen", "saylr4", &path, "--reduced"])).unwrap();
    for ord in ["md", "mindeg", "mindeg-multi", "natural", "rcm"] {
        let out = run(&args(&["solve", &path, "--ordering", ord])).unwrap();
        assert!(out.contains("scaled residual"), "{ord}: {out}");
    }
    // Unknown orderings stay usage errors.
    let err = run(&args(&["solve", &path, "--ordering", "bogus"])).unwrap_err();
    assert_eq!(err.exit_code, 2, "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pivot_rules_through_the_cli() {
    let path = tmp("rule");
    run(&args(&["gen", "orsreg1", &path, "--reduced"])).unwrap();
    for rule in ["partial", "threshold:0.1", "diagonal"] {
        let out = run(&args(&["solve", &path, "--rule", rule])).unwrap();
        assert!(out.contains("scaled residual"), "{rule}: {out}");
        assert!(!out.contains("WARNING"), "{rule}: {out}");
    }
    assert!(run(&args(&["solve", &path, "--rule", "bogus"]))
        .unwrap_err()
        .message
        .contains("unknown pivot rule"));
    assert!(run(&args(&["solve", &path, "--rule", "threshold:7"]))
        .unwrap_err()
        .message
        .contains("threshold must be"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn time_limit_and_watchdog_flags_through_the_cli() {
    let path = tmp("budget");
    run(&args(&["gen", "sherman5", &path, "--reduced"])).unwrap();
    // Generous limits leave a healthy solve alone.
    let out = run(&args(&[
        "solve",
        &path,
        "--threads",
        "2",
        "--time-limit",
        "600",
        "--watchdog",
        "5000",
    ]))
    .unwrap();
    assert!(out.contains("scaled residual"), "{out}");
    // A microscopic limit trips deterministically with exit code 5.
    let err = run(&args(&["solve", &path, "--time-limit", "0.000001"])).unwrap_err();
    assert_eq!(err.exit_code, 5, "{err}");
    assert!(err.message.contains("deadline exceeded"), "{err}");
    // Bad values are usage errors (code 2).
    for bad in [
        &["solve", &path, "--time-limit", "0"][..],
        &["solve", &path, "--time-limit", "abc"][..],
        &["solve", &path, "--watchdog", "0"][..],
        &["solve", &path, "--time-limit"][..],
    ] {
        let err = run(&args(bad)).unwrap_err();
        assert_eq!(err.exit_code, 2, "{bad:?}: {err}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pre_cancelled_token_exits_with_code_130() {
    use parsplu::core::CancelToken;
    let path = tmp("cancel");
    run(&args(&["gen", "sherman3", &path, "--reduced"])).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let err =
        parsplu::cli::run_with_token(&args(&["solve", &path, "--threads", "2"]), Some(&token))
            .unwrap_err();
    assert_eq!(err.exit_code, 130, "{err}");
    assert!(err.message.contains("cancelled"), "{err}");
    // The same args without the token solve fine — the token is the only
    // thing run_with_token adds.
    let out =
        parsplu::cli::run_with_token(&args(&["solve", &path, "--threads", "2"]), None).unwrap();
    assert!(out.contains("scaled residual"), "{out}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn report_and_trace_flags_write_validating_artifacts() {
    use splu_bench::json::{parse, validate_chrome_trace, validate_run_report};
    let path = tmp("report");
    run(&args(&["gen", "sherman5", &path, "--reduced"])).unwrap();
    let report_path = format!("{path}.report.json");
    let trace_path = format!("{path}.trace.json");

    let out = run(&args(&[
        "solve",
        &path,
        "--threads",
        "2",
        "--front-threads",
        "2",
        "--report",
        &report_path,
        "--trace",
        &trace_path,
    ]))
    .unwrap();
    assert!(out.contains("wrote run report"), "{out}");
    assert!(out.contains("wrote pipeline trace"), "{out}");

    let report = parse(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    validate_run_report(&report).expect("solve report schema-validates");
    // The matrix name is the file stem; the solve phase is present only
    // when the solve actually ran.
    assert!(report
        .get("matrix")
        .and_then(|m| m.get("name"))
        .and_then(|n| n.as_str())
        .is_some());
    assert!(report
        .get("phases_s")
        .and_then(|p| p.get("solve"))
        .is_some());
    assert_eq!(
        report
            .get("status")
            .and_then(|s| s.get("kind"))
            .and_then(|k| k.as_str()),
        Some("ok")
    );

    let trace = parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    validate_chrome_trace(&trace).expect("pipeline trace schema-validates");

    // `analyze --report` works too and records no numeric phase.
    let out = run(&args(&["analyze", &path, "--report", &report_path])).unwrap();
    assert!(out.contains("wrote run report"), "{out}");
    let report = parse(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    validate_run_report(&report).expect("analyze report schema-validates");
    assert!(report
        .get("phases_s")
        .and_then(|p| p.get("numeric"))
        .is_none());

    for f in [&path, &report_path, &trace_path] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn failed_solves_still_write_a_report() {
    use splu_bench::json::{parse, validate_run_report};
    let path = tmp("report_singular");
    std::fs::write(
        &path,
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 1 1.0\n",
    )
    .unwrap();
    let report_path = format!("{path}.report.json");
    let err = run(&args(&["solve", &path, "--report", &report_path])).unwrap_err();
    assert_eq!(err.exit_code, 3, "{err}");
    let report = parse(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    validate_run_report(&report).expect("failure report schema-validates");
    assert_eq!(
        report
            .get("status")
            .and_then(|s| s.get("kind"))
            .and_then(|k| k.as_str()),
        Some("singular")
    );
    for f in [&path, &report_path] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn serve_mode_runs_a_session_script_in_process() {
    use parsplu::cli::serve_loop;
    use std::io::Cursor;
    use std::sync::Mutex;
    let path = tmp("serve_script");
    run(&args(&["gen", "goodwin", &path, "--reduced"])).unwrap();
    let script = format!(
        "# a comment and a blank line are skipped\n\n\
         analyze g {path}\n\
         factor g {path}\n\
         refactor g {path}\n\
         solve g\n\
         solve g --refine\n\
         quit\n\
         factor g {path}\n"
    );
    let writer = Mutex::new(Vec::new());
    let n = serve_loop(Cursor::new(script), &writer, 3, None).unwrap();
    assert_eq!(n, 5, "jobs after `quit` are not dispatched");
    let out = String::from_utf8(writer.into_inner().unwrap()).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 5, "one response line per job:\n{out}");
    for l in &lines {
        let v = splu_bench::json::parse(l).expect("each response is one-line JSON");
        assert_eq!(
            v.get("status").and_then(|s| s.as_str()),
            Some("ok"),
            "job failed: {l}"
        );
    }
    // analyze/factor/refactor responses embed a schema-valid run report.
    let mut reports = 0;
    for l in &lines {
        let v = splu_bench::json::parse(l).unwrap();
        if let Some(r) = v.get("report") {
            splu_bench::json::validate_run_report(r).expect("embedded report validates");
            reports += 1;
        }
    }
    assert_eq!(reports, 3, "analyze+factor+refactor embed reports:\n{out}");
    // solve responses carry a small residual.
    let solves: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains(r#""op":"solve""#))
        .collect();
    assert_eq!(solves.len(), 2);
    for l in solves {
        let v = splu_bench::json::parse(l).unwrap();
        let resid = v
            .get("residual")
            .and_then(|r| r.as_num())
            .expect("solve responses report the residual");
        assert!(resid < 1e-8, "{l}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn serve_mode_reports_structured_errors_and_stays_alive() {
    use parsplu::cli::serve_loop;
    use std::io::Cursor;
    use std::sync::Mutex;
    let good = tmp("serve_good");
    let other = tmp("serve_other");
    run(&args(&["gen", "sherman3", &good, "--reduced"])).unwrap();
    run(&args(&["gen", "orsreg1", &other, "--reduced"])).unwrap();
    let script = format!(
        "analyze s {good}\n\
         refactor s {other}\n\
         solve nosuch\n\
         solve s\n\
         refactor s {good}\n\
         solve s\n"
    );
    let writer = Mutex::new(Vec::new());
    // EOF without `quit` also ends the loop cleanly.
    let n = serve_loop(Cursor::new(script), &writer, 2, None).unwrap();
    assert_eq!(n, 6);
    let out = String::from_utf8(writer.into_inner().unwrap()).unwrap();
    // The pattern mismatch is a structured error naming both hashes...
    let mismatch = out
        .lines()
        .find(|l| l.contains("pattern"))
        .expect("mismatch response present");
    assert!(mismatch.contains(r#""status":"error""#), "{mismatch}");
    assert!(mismatch.contains(r#""exit_code":2"#), "{mismatch}");
    // ...the unknown session is rejected...
    assert!(out.contains("unknown session"), "{out}");
    // ...the first solve (before any values) fails, and after the good
    // refactor the session serves solves again.
    let oks = out
        .lines()
        .filter(|l| l.contains(r#""status":"ok""#))
        .count();
    assert_eq!(oks, 3, "analyze + refactor + final solve succeed:\n{out}");
    for f in [&good, &other] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn serve_mode_parallel_sessions_make_progress() {
    use parsplu::cli::serve_loop;
    use std::io::Cursor;
    use std::sync::Mutex;
    let p1 = tmp("serve_p1");
    let p2 = tmp("serve_p2");
    run(&args(&["gen", "sherman5", &p1, "--reduced"])).unwrap();
    run(&args(&["gen", "saylr4", &p2, "--reduced"])).unwrap();
    let mut script = String::new();
    for (name, path) in [("a", &p1), ("b", &p2)] {
        script.push_str(&format!("analyze {name} {path} --threads 2\n"));
    }
    for _ in 0..3 {
        for (name, path) in [("a", &p1), ("b", &p2)] {
            script.push_str(&format!("refactor {name} {path}\n"));
            script.push_str(&format!("solve {name}\n"));
        }
    }
    let writer = Mutex::new(Vec::new());
    let n = serve_loop(Cursor::new(script), &writer, 4, None).unwrap();
    assert_eq!(n, 14);
    let out = String::from_utf8(writer.into_inner().unwrap()).unwrap();
    assert_eq!(out.lines().count(), 14, "{out}");
    for l in out.lines() {
        assert!(l.contains(r#""status":"ok""#), "unexpected failure: {l}");
    }
    for f in [&p1, &p2] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn serve_flag_errors() {
    let err = run(&args(&["serve", "--workers", "0"])).unwrap_err();
    assert_eq!(err.exit_code, 2);
    assert!(err.message.contains("positive"), "{err}");
    let err = run(&args(&["serve", "--frobnicate"])).unwrap_err();
    assert!(err.message.contains("unknown serve option"), "{err}");
}
