//! End-to-end coverage of the kernel dispatch layer through the top-level
//! driver: `SparseLu::factor` must produce **bitwise identical** factors —
//! pivots, solves, determinants — under every [`KernelChoice`], on every
//! suite matrix. Without the `simd` cargo feature `Simd`/`Auto` resolve to
//! the portable table (so this test pins the documented fallback); with it,
//! the explicit-width kernels must reproduce the portable bits exactly.

use parsplu::core::{KernelChoice, Options, SparseLu};
use parsplu::matgen::{manufactured_rhs, paper_suite, Scale};

fn factor_with(choice: KernelChoice, a: &parsplu::sparse::CscMatrix, threads: usize) -> SparseLu {
    let opts = Options {
        threads,
        kernels: choice,
        ..Options::default()
    };
    SparseLu::factor(a, &opts).expect("factorization succeeds")
}

#[test]
fn sparse_lu_factors_are_kernel_invariant_suitewide() {
    for m in paper_suite(Scale::Reduced) {
        let (_, b) = manufactured_rhs(&m.a, 3);
        for threads in [1usize, 4] {
            let reference = factor_with(KernelChoice::Portable, &m.a, threads);
            let x_ref = reference.solve(&b);
            let det_ref = reference.determinant();
            for choice in [KernelChoice::Simd, KernelChoice::Auto] {
                let lu = factor_with(choice, &m.a, threads);
                // Solves run through every stored factor entry, so equal
                // solve vectors + equal determinants pin the factor bits.
                assert_eq!(
                    lu.solve(&b),
                    x_ref,
                    "{}: {choice:?} solve differs at {threads} threads",
                    m.name
                );
                assert_eq!(
                    lu.determinant(),
                    det_ref,
                    "{}: {choice:?} determinant differs",
                    m.name
                );
            }
        }
    }
}

#[test]
fn kernel_choice_defaults_to_portable() {
    assert_eq!(Options::default().kernels, KernelChoice::Portable);
}
