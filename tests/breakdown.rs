//! Breakdown-policy integration tests on the ill-conditioned pivoting
//! stress family: restricted (diagonal-rule) pivoting genuinely breaks
//! down at designated columns, and the two policies respond as specified —
//! [`BreakdownPolicy::Error`] fails with the exact global column,
//! [`BreakdownPolicy::Perturb`] completes with a health report and the
//! auto-refined solve recovers an accurate solution for the true matrix.

use parsplu::core::{BreakdownPolicy, LuError, Options, OrderingChoice, PivotRule, SparseLu};
use parsplu::matgen::{manufactured_rhs, tiny_pivot_matrix};
use parsplu::sparse::relative_residual;

/// Natural order, no postordering, no interchanges: the factorization
/// visits the original columns in place, so breakdown columns are
/// predictable.
fn diagonal_rule_opts(threads: usize) -> Options {
    Options {
        ordering: OrderingChoice::Natural,
        postorder: false,
        pivot_rule: PivotRule::Diagonal,
        pivot_threshold: 1e-20,
        threads,
        ..Options::default()
    }
}

#[test]
fn error_policy_reports_the_first_tiny_column() {
    let a = tiny_pivot_matrix(60, &[23], 1e-30, 5);
    let opts = diagonal_rule_opts(1);
    assert_eq!(opts.breakdown, BreakdownPolicy::Error, "default policy");
    match SparseLu::factor(&a, &opts).map(|_| ()) {
        Err(LuError::NumericallySingular { column }) => assert_eq!(column, 23),
        other => panic!("expected NumericallySingular at column 23, got {other:?}"),
    }
}

#[test]
fn perturb_policy_completes_and_refinement_recovers_the_solution() {
    let n = 60;
    let tiny_cols = [11, 37, 52];
    let a = tiny_pivot_matrix(n, &tiny_cols, 1e-30, 5);
    let (_, b) = manufactured_rhs(&a, 3);
    for threads in [1, 4] {
        let opts = Options {
            breakdown: BreakdownPolicy::perturb_default(),
            ..diagonal_rule_opts(threads)
        };
        let lu = SparseLu::factor(&a, &opts).expect("perturb policy must complete");
        let health = lu.health();
        assert_eq!(
            health.perturbed_columns, tiny_cols,
            "threads={threads}: exactly the tiny columns are perturbed"
        );
        assert!(
            health.max_perturbation > 0.0 && health.max_perturbation.is_finite(),
            "threads={threads}: {health:?}"
        );
        assert!(
            health.growth.is_finite() && health.growth >= 1.0,
            "threads={threads}: growth {}",
            health.growth
        );
        let condest = health.condest.expect("perturbed factors carry a condest");
        assert!(condest.is_finite() && condest > 0.0);

        // `solve` auto-routes through refinement against the true input.
        let x = lu.solve(&b);
        let resid = relative_residual(&a, &x, &b);
        assert!(resid < 1e-10, "threads={threads}: residual {resid}");
    }
}

#[test]
fn partial_pivoting_needs_no_perturbation_on_the_same_matrix() {
    // The family is only hard for restricted pivoting: with interchanges
    // the boosted subdiagonal is a perfectly good pivot.
    let a = tiny_pivot_matrix(60, &[11, 37, 52], 1e-30, 5);
    let (_, b) = manufactured_rhs(&a, 3);
    let lu = SparseLu::factor(&a, &Options::default()).unwrap();
    assert!(!lu.health().is_perturbed());
    assert_eq!(lu.health().condest, None);
    let x = lu.solve(&b);
    assert!(relative_residual(&a, &x, &b) < 1e-10);
}

#[test]
fn perturbed_solve_routes_are_consistent() {
    // solve() on a perturbed factorization equals solve_refined() with the
    // same tolerances, and both beat the raw factors' answer.
    let a = tiny_pivot_matrix(48, &[20], 1e-30, 9);
    let (_, b) = manufactured_rhs(&a, 7);
    let opts = Options {
        breakdown: BreakdownPolicy::perturb_default(),
        ..diagonal_rule_opts(1)
    };
    let lu = SparseLu::factor(&a, &opts).unwrap();
    let auto = lu.solve(&b);
    let (explicit, iters) = lu.solve_refined(&a, &b, 1e-12, 20);
    assert_eq!(auto, explicit, "auto-routing matches explicit refinement");
    assert!(iters <= 20);
    assert!(relative_residual(&a, &auto, &b) < 1e-10);
}
