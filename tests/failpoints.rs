//! Deterministic fault-injection suite (the `failpoints` cargo feature).
//!
//! Property: any single injected fault — a worker panic inside a `Factor`
//! task, a forced pivot breakdown at a chosen column, or a non-finite
//! input value — yields a clean structured error or a perturbed-but-
//! refined solution on every thread count and mapping. Never a hang,
//! never a panic escaping the library, never a nondeterministic outcome.
//!
//! Scenarios are serialized by [`FailScenario`]'s process-wide lock, so
//! `cargo test`'s default test-level parallelism cannot interleave armed
//! injection points.

#![cfg(feature = "failpoints")]

use parsplu::core::failpoints::FailScenario;
use parsplu::core::{
    analyze, BreakdownPolicy, CancelToken, LuError, Options, OrderingChoice, PivotRule, RunBudget,
    SparseLu, WatchdogConfig,
};
use parsplu::matgen::{manufactured_rhs, random_unsymmetric};
use parsplu::sched::Mapping;
use proptest::prelude::*;
use std::time::Duration;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn opts(threads: usize, mapping: Mapping) -> Options {
    Options {
        threads,
        mapping,
        ..Options::default()
    }
}

fn arb_mapping() -> impl Strategy<Value = Mapping> {
    (0usize..2).prop_map(|i| {
        if i == 0 {
            Mapping::Static1D
        } else {
            Mapping::Dynamic
        }
    })
}

proptest! {
    // Each case runs the full pipeline on up to 8 threads for every entry
    // of THREADS; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An injected panic inside `Factor(k)` surfaces as
    /// [`LuError::WorkerPanic`] naming the task — on every thread count
    /// and mapping, with the executor quiescent afterwards (the test
    /// returning at all proves no worker was left parked).
    #[test]
    fn injected_factor_panic_becomes_worker_panic_error(
        seed in 0u64..32,
        k_raw in 0usize..64,
        mapping in arb_mapping(),
    ) {
        let a = random_unsymmetric(40, 3, seed);
        let scenario = FailScenario::new();
        for &threads in &THREADS {
            let o = opts(threads, mapping);
            let nb = analyze(a.pattern(), &o).unwrap().block_structure.num_blocks();
            let k = k_raw % nb;
            scenario.panic_at_factor(k);
            match SparseLu::factor(&a, &o).map(|_| ()) {
                Err(LuError::WorkerPanic { worker, task }) => {
                    prop_assert!(worker < threads.max(1), "worker {worker}");
                    prop_assert!(
                        task.contains(&format!("Factor({k})")),
                        "task `{task}` should name Factor({k})"
                    );
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "threads={threads}: expected WorkerPanic, got {other:?}"
                    )))
                }
            }
        }
    }

    /// A forced pivot breakdown under [`BreakdownPolicy::Error`] is a
    /// deterministic [`LuError::NumericallySingular`] at exactly the
    /// forced global column, independent of thread count and mapping.
    #[test]
    fn forced_breakdown_error_policy_is_deterministic(
        seed in 0u64..32,
        col in 0usize..40,
        mapping in arb_mapping(),
    ) {
        let a = random_unsymmetric(40, 3, seed);
        let scenario = FailScenario::new();
        scenario.force_breakdown_at(col);
        for &threads in &THREADS {
            match SparseLu::factor(&a, &opts(threads, mapping)).map(|_| ()) {
                Err(LuError::NumericallySingular { column }) => {
                    prop_assert_eq!(column, col, "threads={}", threads)
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "threads={threads}: expected NumericallySingular({col}), got {other:?}"
                    )))
                }
            }
        }
    }

    /// The same forced breakdown under [`BreakdownPolicy::Perturb`]
    /// completes, reports exactly the forced column in the health record,
    /// and the solve path produces bitwise-identical finite output on
    /// every thread count — the perturbed-column set and the factors are
    /// schedule-independent.
    #[test]
    fn forced_breakdown_perturb_policy_is_deterministic(
        seed in 0u64..32,
        col in 0usize..40,
        mapping in arb_mapping(),
    ) {
        let a = random_unsymmetric(40, 3, seed);
        let (_, b) = manufactured_rhs(&a, seed ^ 0x5eed);
        let scenario = FailScenario::new();
        scenario.force_breakdown_at(col);
        let mut reference: Option<(Vec<usize>, f64, Vec<f64>)> = None;
        for &threads in &THREADS {
            let o = Options {
                breakdown: BreakdownPolicy::perturb_default(),
                ..opts(threads, mapping)
            };
            let lu = SparseLu::factor(&a, &o).expect("perturb policy completes");
            let health = lu.health().clone();
            prop_assert_eq!(&health.perturbed_columns, &vec![col], "threads={}", threads);
            prop_assert!(health.max_perturbation > 0.0 && health.max_perturbation.is_finite());
            prop_assert!(health.condest.is_some(), "perturbed factors carry a condest");
            let x = lu.solve(&b);
            prop_assert!(x.iter().all(|v| v.is_finite()), "threads={}", threads);
            match &reference {
                None => reference = Some((health.perturbed_columns, health.max_perturbation, x)),
                Some((cols, maxp, x0)) => {
                    prop_assert_eq!(&health.perturbed_columns, cols, "threads={}", threads);
                    prop_assert_eq!(health.max_perturbation, *maxp, "threads={}", threads);
                    prop_assert_eq!(&x, x0, "solution bits differ at threads={}", threads);
                }
            }
        }
    }

    /// Non-finite input values are rejected up front as
    /// [`LuError::NonFiniteInput`] naming the offending column — the
    /// parallel numeric phase never sees them.
    #[test]
    fn non_finite_input_is_rejected_before_factorization(
        seed in 0u64..32,
        pos in 0usize..1000,
        inf in 0usize..2,
        mapping in arb_mapping(),
    ) {
        let a = random_unsymmetric(40, 3, seed);
        let bad = if inf == 1 { f64::INFINITY } else { f64::NAN };
        let (mut coo_r, mut coo_c, mut coo_v) = (Vec::new(), Vec::new(), Vec::new());
        for (i, j, v) in a.triplets() {
            coo_r.push(i);
            coo_c.push(j);
            coo_v.push(v);
        }
        let hit = pos % coo_v.len();
        coo_v[hit] = bad;
        let expect_col = coo_c[hit];
        let t: Vec<(usize, usize, f64)> = coo_r
            .into_iter()
            .zip(coo_c)
            .zip(coo_v)
            .map(|((i, j), v)| (i, j, v))
            .collect();
        let poisoned = parsplu::sparse::CscMatrix::from_triplets(40, 40, &t).unwrap();
        for &threads in &THREADS {
            match SparseLu::factor(&poisoned, &opts(threads, mapping)).map(|_| ()) {
                Err(LuError::NonFiniteInput { column }) => {
                    prop_assert_eq!(column, expect_col, "threads={}", threads)
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "threads={threads}: expected NonFiniteInput, got {other:?}"
                    )))
                }
            }
        }
    }
}

/// After a contained injected panic, the very same process can factor the
/// same matrix cleanly — no poisoned locks, no leaked abort flags.
#[test]
fn factorization_recovers_after_injected_panic() {
    let a = random_unsymmetric(48, 3, 7);
    let (_, b) = manufactured_rhs(&a, 8);
    for &threads in &THREADS {
        let o = opts(threads, Mapping::Dynamic);
        {
            let scenario = FailScenario::new();
            scenario.panic_at_factor(0);
            let err = SparseLu::factor(&a, &o).map(|_| ()).unwrap_err();
            assert!(matches!(err, LuError::WorkerPanic { .. }), "{err:?}");
        }
        // Scenario dropped: the same inputs now factor and solve cleanly.
        let lu = SparseLu::factor(&a, &o).expect("clean run after contained panic");
        let x = lu.solve(&b);
        assert!(parsplu::sparse::relative_residual(&a, &x, &b) < 1e-10);
    }
}

/// A cancellation that fires exactly while a symbolic-fill chunk task is
/// in flight surfaces as [`LuError::Cancelled`] from the front half — the
/// run budget covers the symbolic phases, not just the numeric one — and
/// a fresh budget lets the same inputs analyze cleanly afterwards.
#[test]
fn cancel_during_symbolic_fill_is_contained() {
    let a = random_unsymmetric(40, 3, 5);
    for &threads in &[2usize, 4, 8] {
        let scenario = FailScenario::new();
        // Chunk 0 always exists, so the injection fires deterministically
        // with a front-half task in flight.
        scenario.cancel_at_symbolic_chunk(0);
        let token = CancelToken::new();
        let o = Options {
            front_threads: threads,
            budget: RunBudget {
                token: Some(token.clone()),
                ..RunBudget::default()
            },
            ..Options::default()
        };
        match analyze(a.pattern(), &o).map(|_| ()) {
            Err(LuError::Cancelled { .. }) => {}
            other => panic!("front_threads={threads}: expected Cancelled, got {other:?}"),
        }
        assert!(
            token.is_cancelled(),
            "the failpoint cancels the caller's own token"
        );
        drop(scenario);
        // Scenario dropped, fresh budget: the same pattern analyzes (and
        // the full pipeline factors) cleanly.
        let o2 = Options {
            front_threads: threads,
            ..Options::default()
        };
        analyze(a.pattern(), &o2).expect("clean analysis after contained cancellation");
    }
}

/// A `Factor` task parked indefinitely by the stall failpoint is diagnosed
/// by the liveness watchdog as [`LuError::Stalled`] on every thread count
/// and mapping, with a stall report covering all workers — and the
/// watchdog's abort releases the parked task, so the test returning at all
/// proves the run drained instead of leaking a thread.
#[test]
fn stalled_factor_task_is_diagnosed_by_the_watchdog() {
    let a = random_unsymmetric(40, 3, 9);
    for mapping in [Mapping::Static1D, Mapping::Dynamic] {
        for &threads in &THREADS {
            let o = Options {
                budget: RunBudget::unbounded()
                    .with_watchdog(WatchdogConfig::new(Duration::from_millis(60))),
                ..opts(threads, mapping)
            };
            let scenario = FailScenario::new();
            scenario.stall_at_factor(0);
            match SparseLu::factor(&a, &o).map(|_| ()) {
                Err(LuError::Stalled {
                    columns_done,
                    report,
                }) => {
                    assert_eq!(
                        report.workers.len(),
                        threads,
                        "stall report covers every worker (threads={threads}, {mapping:?})"
                    );
                    assert!(report.stalled_for >= Duration::from_millis(60));
                    assert!(report.tasks_pending > 0);
                    assert!(columns_done < a.ncols());
                }
                other => panic!("threads={threads} {mapping:?}: expected Stalled, got {other:?}"),
            }
            drop(scenario);
            // The same process factors cleanly afterwards.
            SparseLu::factor(&a, &opts(threads, mapping)).expect("clean run after stall");
        }
    }
}

/// A caller-side cancellation also releases a stalled task: the stall
/// failpoint's release predicate watches the run token, so cancelling from
/// another thread unblocks the parked worker and the run drains to
/// [`LuError::Cancelled`].
#[test]
fn cancellation_releases_a_stalled_task() {
    let a = random_unsymmetric(40, 3, 5);
    let token = CancelToken::new();
    let canceller = {
        let t = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            t.cancel();
        })
    };
    let o = Options {
        budget: RunBudget::unbounded().with_token(token),
        ..opts(2, Mapping::Dynamic)
    };
    let scenario = FailScenario::new();
    scenario.stall_at_factor(0);
    match SparseLu::factor(&a, &o).map(|_| ()) {
        Err(LuError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    canceller.join().unwrap();
}

/// Poison audit: a thread that panics while *holding* a [`FailScenario`]
/// must not poison the process-wide scenario lock — the guard's drop
/// releases the lock and disarms the knobs during the unwind, so the next
/// scenario (and an unrelated factorization) proceed cleanly. A poisoning
/// `std::sync::Mutex` here would cascade a spurious failure into every
/// later fault-injection test in the process.
#[test]
fn scenario_lock_survives_a_panicking_holder() {
    let holder = std::thread::spawn(|| {
        let scenario = FailScenario::new();
        scenario.panic_at_factor(3);
        panic!("deliberate panic while holding the scenario lock");
    });
    assert!(holder.join().is_err(), "the holder must have panicked");
    // Re-acquire immediately: must neither block forever nor report poison,
    // and the panicking holder's armed knob must be gone.
    let _scenario = FailScenario::new();
    let a = random_unsymmetric(24, 2, 1);
    SparseLu::factor(&a, &opts(2, Mapping::Dynamic))
        .expect("no leaked failpoint and no poisoned lock after a panicking holder");
}

/// An injected worker panic *during a refactorization* is contained, the
/// session stays reusable, and the recovery refactor is bitwise identical
/// to a fresh factorization of the same values — the cached schedule and
/// recycled storage carry no state over from the aborted run.
#[test]
fn session_survives_injected_panic_during_refactor() {
    use parsplu::core::SluSession;
    let a = random_unsymmetric(48, 3, 11);
    let mut vals = a.clone();
    for v in vals.values_mut() {
        *v *= 1.25;
    }
    for &threads in &THREADS {
        for mapping in [Mapping::Static1D, Mapping::Dynamic] {
            let o = opts(threads, mapping);
            let mut s = SluSession::analyze(a.pattern(), &o).unwrap();
            s.factor(&a).unwrap();
            {
                let scenario = FailScenario::new();
                scenario.panic_at_factor(0);
                let err = s.refactor(&vals).map(|_| ()).unwrap_err();
                assert!(
                    matches!(err, LuError::WorkerPanic { .. }),
                    "threads={threads} {mapping:?}: {err:?}"
                );
                assert!(!s.is_factored());
                assert!(matches!(
                    s.try_solve(&vec![0.0; a.ncols()]),
                    Err(LuError::NotFactored)
                ));
            }
            // Scenario dropped: the same session refactors cleanly, and the
            // factors match a from-scratch session bit for bit.
            s.refactor(&vals)
                .expect("session reusable after contained panic");
            let mut fresh = SluSession::analyze(a.pattern(), &o).unwrap();
            fresh.factor(&vals).unwrap();
            let (x, y) = (s.block_matrix().unwrap(), fresh.block_matrix().unwrap());
            for k in 0..x.num_block_cols() {
                let cx = x.column(k).read();
                let cy = y.column(k).read();
                assert_eq!(cx.pivots, cy.pivots, "threads={threads}: pivots at {k}");
                assert_eq!(
                    cx.panel.data(),
                    cy.panel.data(),
                    "threads={threads}: panel at {k}"
                );
            }
        }
    }
}

/// Arming a failpoint while [`PivotRule::Diagonal`] and natural ordering
/// are active exercises the restricted-pivoting panel path too.
#[test]
fn forced_breakdown_hits_the_diagonal_rule_path() {
    let a = random_unsymmetric(32, 2, 3);
    let o = Options {
        ordering: OrderingChoice::Natural,
        postorder: false,
        pivot_rule: PivotRule::Diagonal,
        threads: 2,
        ..Options::default()
    };
    let scenario = FailScenario::new();
    scenario.force_breakdown_at(17);
    match SparseLu::factor(&a, &o).map(|_| ()) {
        Err(LuError::NumericallySingular { column }) => assert_eq!(column, 17),
        other => panic!("expected NumericallySingular(17), got {other:?}"),
    }
}
