//! End-to-end integration tests: the full pipeline on every benchmark
//! generator, across task graphs, thread counts and mappings.

use parsplu::core::{analyze, Options, SparseLu, TaskGraphKind};
use parsplu::matgen::{manufactured_rhs, paper_suite, Scale};
use parsplu::sched::Mapping;
use parsplu::sparse::relative_residual;

#[test]
fn whole_suite_factors_and_solves_with_both_graphs() {
    for m in paper_suite(Scale::Reduced) {
        let (_, b) = manufactured_rhs(&m.a, 17);
        for task_graph in [TaskGraphKind::EForest, TaskGraphKind::SStar] {
            let opts = Options {
                task_graph,
                ..Options::default()
            };
            let lu = SparseLu::factor(&m.a, &opts).unwrap_or_else(|e| panic!("{}: {e}", m.name));
            let x = lu.solve(&b);
            let r = relative_residual(&m.a, &x, &b);
            assert!(r < 1e-10, "{} ({task_graph:?}): residual {r}", m.name);
        }
    }
}

#[test]
fn parallel_runs_reproduce_sequential_bits() {
    for m in paper_suite(Scale::Reduced) {
        let (_, b) = manufactured_rhs(&m.a, 23);
        let seq = SparseLu::factor(&m.a, &Options::default()).expect("sequential");
        let x_seq = seq.solve(&b);
        for threads in [2usize, 4] {
            for mapping in [Mapping::Static1D, Mapping::Dynamic] {
                let opts = Options {
                    threads,
                    mapping,
                    ..Options::default()
                };
                let par = SparseLu::factor(&m.a, &opts).expect("parallel");
                let x = par.solve(&b);
                // Same pivots, same arithmetic order within tasks → the
                // results must agree to the last bit.
                assert_eq!(
                    x, x_seq,
                    "{}: threads={threads} {mapping:?} changed the numbers",
                    m.name
                );
            }
        }
    }
}

#[test]
fn postorder_and_amalgamation_toggles_preserve_solutions() {
    let m = &paper_suite(Scale::Reduced)[4]; // orsreg1
    let (x_true, b) = manufactured_rhs(&m.a, 31);
    for postorder in [false, true] {
        for amalgamation in [None, Some(Default::default())] {
            let opts = Options {
                postorder,
                amalgamation,
                ..Options::default()
            };
            let lu = SparseLu::factor(&m.a, &opts).expect("factors");
            let x = lu.solve(&b);
            let err = x
                .iter()
                .zip(&x_true)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0_f64, f64::max);
            assert!(err < 1e-8, "postorder={postorder}: error {err}");
        }
    }
}

#[test]
fn supernode_counts_shrink_with_postordering_suitewide() {
    // The paper's Table 3 claim, asserted as a suite-wide invariant: the
    // total supernode count with postordering never exceeds the count
    // without it (individual matrices may tie).
    let mut with_total = 0usize;
    let mut without_total = 0usize;
    for m in paper_suite(Scale::Reduced) {
        let with = analyze(m.a.pattern(), &Options::default()).expect("analysis");
        let without = analyze(
            m.a.pattern(),
            &Options {
                postorder: false,
                ..Options::default()
            },
        )
        .expect("analysis");
        with_total += with.stats.supernodes;
        without_total += without.stats.supernodes;
    }
    assert!(
        with_total < without_total,
        "postordering should reduce supernodes overall: {with_total} vs {without_total}"
    );
}

#[test]
fn eforest_graph_is_sparser_suitewide() {
    for m in paper_suite(Scale::Reduced) {
        let sym = analyze(m.a.pattern(), &Options::default()).expect("analysis");
        let e = sym.build_graph(TaskGraphKind::EForest);
        let s = sym.build_graph(TaskGraphKind::SStar);
        assert_eq!(e.len(), s.len(), "{}: task sets differ", m.name);
        assert!(
            e.num_edges() <= s.num_edges(),
            "{}: eforest graph has more edges",
            m.name
        );
        assert!(
            e.critical_path_len() <= s.critical_path_len(),
            "{}: eforest graph has a longer critical path",
            m.name
        );
    }
}
