//! Property-based tests (proptest) for the paper's theorems and the core
//! structural invariants, on randomly generated sparse matrices.

use proptest::prelude::*;

use parsplu::ordering::{maximum_transversal, StructuralRank};
use parsplu::sparse::{Permutation, SparsityPattern};
use parsplu::symbolic::{
    postorder_permutation, static_fact::static_symbolic_reference, static_symbolic_factorization,
    EliminationForest, ExtendedEforest,
};

/// Strategy: a random square pattern with a zero-free diagonal.
fn diag_pattern(max_n: usize) -> impl Strategy<Value = SparsityPattern> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..4 * n).prop_map(move |extra| {
            let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            entries.extend(extra);
            SparsityPattern::from_entries(n, n, entries).expect("entries in range")
        })
    })
}

/// Strategy: an arbitrary square pattern (diagonal not guaranteed).
fn square_pattern(max_n: usize) -> impl Strategy<Value = SparsityPattern> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..5 * n).prop_map(move |entries| {
            SparsityPattern::from_entries(n, n, entries).expect("entries in range")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The union–find static symbolic factorization agrees with the O(n³)
    /// reference implementation.
    #[test]
    fn static_factorization_matches_reference(p in diag_pattern(24)) {
        let fast = static_symbolic_factorization(&p).expect("valid input");
        let slow = static_symbolic_reference(&p).expect("valid input");
        prop_assert_eq!(&fast.l, &slow.l);
        prop_assert_eq!(&fast.u, &slow.u);
    }

    /// Theorem 3: postordering the LU eforest leaves the static symbolic
    /// factorization invariant (only labels move).
    #[test]
    fn theorem3_postorder_invariance(p in diag_pattern(28)) {
        let f = static_symbolic_factorization(&p).expect("valid input");
        let po = postorder_permutation(&f);
        let f2 = static_symbolic_factorization(&p.permuted(&po, &po)).expect("still valid");
        prop_assert_eq!(&f2.l, &f.l.permuted(&po, &po));
        prop_assert_eq!(&f2.u, &f.u.permuted(&po, &po));
    }

    /// Rows of L̄ are branches of the eforest; columns of Ū are unions of
    /// column subtrees: the compact storage reconstructs both exactly.
    #[test]
    fn compact_storage_reconstructs(p in diag_pattern(28)) {
        let f = static_symbolic_factorization(&p).expect("valid input");
        let ext = ExtendedEforest::new(&f);
        prop_assert_eq!(&ext.reconstruct_l(), &f.l);
        prop_assert_eq!(&ext.reconstruct_u(), &f.u);
    }

    /// Theorem 1: Ū columns are closed under taking ancestors below the
    /// column index.
    #[test]
    fn theorem1_ancestor_closure(p in diag_pattern(24)) {
        let f = static_symbolic_factorization(&p).expect("valid input");
        let forest = EliminationForest::from_filled(&f);
        for j in 0..f.n() {
            for &i in f.u.col(j) {
                let mut x = i;
                while let Some(k) = forest.parent(x) {
                    if k >= j { break; }
                    prop_assert!(f.u.contains(k, j), "ū({},{}) missing", k, j);
                    x = k;
                }
            }
        }
    }

    /// The source-column disjointness behind the paper's Section 4
    /// concurrency claim: L̄ columns of independent (non-ancestor-related)
    /// nodes have disjoint off-diagonal row sets.
    #[test]
    fn independent_columns_have_disjoint_l_structures(p in diag_pattern(20)) {
        let f = static_symbolic_factorization(&p).expect("valid input");
        let forest = EliminationForest::from_filled(&f);
        let n = f.n();
        for i1 in 0..n {
            for i2 in i1 + 1..n {
                if forest.is_ancestor(i2, i1) || forest.is_ancestor(i1, i2) {
                    continue;
                }
                let s1: std::collections::HashSet<usize> =
                    f.l_col(i1).iter().copied().filter(|&r| r > i1).collect();
                for &r in f.l_col(i2) {
                    if r > i2 {
                        prop_assert!(
                            !s1.contains(&r),
                            "row {} shared by independent columns {} and {}", r, i1, i2
                        );
                    }
                }
            }
        }
    }

    /// Maximum transversal: either returns a permutation realizing a
    /// zero-free diagonal, or correctly reports deficiency (cross-checked
    /// against a brute-force matching for small n).
    #[test]
    fn transversal_is_a_maximum_matching(p in square_pattern(10)) {
        let n = p.ncols();
        // Brute force maximum bipartite matching by augmenting search over
        // all columns (same algorithm family, independent implementation).
        fn try_all(p: &SparsityPattern, col: usize, used: &mut Vec<bool>) -> usize {
            if col == p.ncols() {
                return 0;
            }
            // Either skip this column...
            let mut best = try_all(p, col + 1, used);
            // ...or match it to any free row.
            for &r in p.col(col) {
                if !used[r] {
                    used[r] = true;
                    best = best.max(1 + try_all(p, col + 1, used));
                    used[r] = false;
                }
            }
            best
        }
        let brute = try_all(&p, 0, &mut vec![false; n]);
        match maximum_transversal(&p) {
            StructuralRank::Full(perm) => {
                prop_assert_eq!(brute, n);
                let b = p.permuted(&perm, &Permutation::identity(n));
                prop_assert!(b.has_zero_free_diagonal());
            }
            StructuralRank::Deficient { rank } => {
                prop_assert_eq!(rank, brute);
                prop_assert!(rank < n);
            }
        }
    }
}
