//! Observability gate: the counters agree with the analytic model.
//!
//! The metrics registry counts what actually ran; the symbolic phase and
//! the cost model predict what *should* run. These tests pin the two
//! together on the reduced paper suite:
//!
//! * fill counters equal the symbolic `l_len`/`u_len` column sums, at
//!   every front-thread count (the parallel chunked path counts
//!   per-chunk, the sequential path counts from the result — both must
//!   land on the analytic value);
//! * factor and trsm flop counters equal the `costs.rs` model exactly
//!   (the formulas are integral); gemm is bounded by the model (the
//!   executor skips structurally-zero destination blocks) and equals it
//!   on a dense matrix where no block is missing;
//! * run reports schema-validate through the bench crate's validator and
//!   carry the registry's values verbatim;
//! * the combined Chrome trace is well-formed and shows the pipeline
//!   phase tracks next to the numeric executor's workers on one epoch.

use parsplu::core::{analyze, estimate_task_costs, factor_reported, ObsSession, Options, SparseLu};
use parsplu::matgen::{paper_suite, Scale};
use parsplu::obs::Counter;
use parsplu::sched::Task;
use parsplu::sparse::CscMatrix;
use splu_bench::json::{parse, validate_chrome_trace, validate_run_report};

/// Analytic `Σ_j l_len(j)` and `Σ_i u_len(i)` (diagonals included) from
/// the symbolic factorization the driver itself computes.
fn symbolic_fill_sums(a: &CscMatrix, opts: &Options) -> (u64, u64) {
    let sym = analyze(a.pattern(), opts).expect("analysis succeeds");
    let l_sum: usize = (0..sym.filled.l.ncols())
        .map(|j| sym.filled.l.col(j).len())
        .sum();
    let u_sum: usize = (0..sym.filled.u.ncols())
        .map(|j| sym.filled.u.col(j).len())
        .sum();
    (l_sum as u64, u_sum as u64)
}

#[test]
fn counted_fill_matches_symbolic_lengths_at_every_front_thread_count() {
    for m in paper_suite(Scale::Reduced) {
        for front_threads in [1usize, 2, 4, 8] {
            let opts = Options {
                front_threads,
                ..Options::default()
            };
            let session = ObsSession::new();
            SparseLu::factor_observed(&m.a, &opts, &session).expect("factorization succeeds");
            let (l_sum, u_sum) = symbolic_fill_sums(&m.a, &opts);
            assert_eq!(
                session.metrics().get(Counter::FillL),
                l_sum,
                "{}@{front_threads}: counted L fill != Σ l_len",
                m.name
            );
            assert_eq!(
                session.metrics().get(Counter::FillU),
                u_sum,
                "{}@{front_threads}: counted U fill != Σ u_len",
                m.name
            );
        }
    }
}

/// The model's flops per task, split into the factor / trsm / gemm terms
/// the registry counts separately (`costs.rs` only exposes the sum per
/// task, but its two Update terms are recomputable from the widths).
fn model_flop_split(a: &CscMatrix, opts: &Options) -> (f64, f64, f64) {
    let sym = analyze(a.pattern(), opts).expect("analysis succeeds");
    let graph = sym.build_graph(opts.task_graph);
    let costs = estimate_task_costs(&sym.block_structure, &graph);
    let (mut factor, mut trsm, mut gemm) = (0.0, 0.0, 0.0);
    for (t, c) in graph.tasks().iter().zip(&costs) {
        match *t {
            Task::Factor(_) => factor += c.flops,
            Task::Update { src, dst } => {
                let wk = sym.block_structure.partition.width(src) as f64;
                let wj = sym.block_structure.partition.width(dst) as f64;
                let t = wk * (wk - 1.0) * wj;
                trsm += t;
                gemm += c.flops - t;
            }
        }
    }
    (factor, trsm, gemm)
}

#[test]
fn counted_kernel_flops_match_the_cost_model_on_the_suite() {
    for m in paper_suite(Scale::Reduced) {
        let opts = Options {
            threads: 2,
            ..Options::default()
        };
        let session = ObsSession::new();
        SparseLu::factor_observed(&m.a, &opts, &session).expect("factorization succeeds");
        let (factor_model, trsm_model, gemm_model) = model_flop_split(&m.a, &opts);
        let reg = session.metrics();
        // Factor and trsm: the executed work is exactly the model (both
        // formulas are integral, so the f64 model is exact too).
        assert_eq!(
            reg.get(Counter::FactorFlops) as f64,
            factor_model,
            "{}: factor flops != model",
            m.name
        );
        assert_eq!(
            reg.get(Counter::TrsmFlops) as f64,
            trsm_model,
            "{}: trsm flops != model",
            m.name
        );
        // Gemm: the executor skips updates into structurally-zero
        // destination blocks, so counted <= model.
        assert!(
            reg.get(Counter::GemmFlops) as f64 <= gemm_model,
            "{}: gemm flops {} exceed model {}",
            m.name,
            reg.get(Counter::GemmFlops),
            gemm_model
        );
        // And one trsm call per Update task.
        let n_updates = {
            let sym = analyze(m.a.pattern(), &opts).unwrap();
            let graph = sym.build_graph(opts.task_graph);
            graph
                .tasks()
                .iter()
                .filter(|t| matches!(t, Task::Update { .. }))
                .count() as u64
        };
        assert_eq!(reg.get(Counter::TrsmCalls), n_updates, "{}", m.name);
    }
}

#[test]
fn counted_gemm_flops_equal_the_model_on_a_dense_matrix() {
    // Fully dense: every destination block exists, so the skip never
    // fires and counted gemm flops equal the model term exactly.
    let n = 24;
    let a = CscMatrix::from_triplets_iter(
        n,
        n,
        (0..n).flat_map(|i| {
            (0..n).map(move |j| {
                let bump = if i == j { n as f64 } else { 0.0 };
                (i, j, 1.0 + bump + ((i * 31 + j * 17) % 7) as f64)
            })
        }),
    )
    .unwrap();
    let opts = Options::default();
    let session = ObsSession::new();
    SparseLu::factor_observed(&a, &opts, &session).expect("dense factorization succeeds");
    let (factor_model, trsm_model, gemm_model) = model_flop_split(&a, &opts);
    let reg = session.metrics();
    assert_eq!(reg.get(Counter::FactorFlops) as f64, factor_model);
    assert_eq!(reg.get(Counter::TrsmFlops) as f64, trsm_model);
    assert_eq!(reg.get(Counter::GemmFlops) as f64, gemm_model);
}

#[test]
fn run_report_schema_validates_and_carries_the_registry_values() {
    for m in paper_suite(Scale::Reduced).into_iter().take(3) {
        let opts = Options {
            threads: 2,
            front_threads: 2,
            ..Options::default()
        };
        let (result, report, session) = factor_reported(&m.a, &opts, m.name);
        result.expect("factorization succeeds");
        let doc = parse(&report.to_json()).expect("report is valid JSON");
        let n_counters = validate_run_report(&doc).expect("report schema-validates");
        // Registry counters plus the scheduler's six.
        assert_eq!(n_counters, Counter::ALL.len() + 6, "{}", m.name);
        let counters = doc.get("counters").expect("counters object");
        for c in Counter::ALL {
            let v = counters
                .get(c.name())
                .and_then(|j| j.as_num())
                .unwrap_or_else(|| panic!("{}: counter {} missing", m.name, c.name()));
            assert_eq!(
                v as u64,
                session.metrics().get(c),
                "{}: {}",
                m.name,
                c.name()
            );
        }
        // Phase walls: every canonical phase the driver runs is present
        // and positive... parse is CLI-only, so expect the other eight.
        let phases = doc.get("phases_s").expect("phases object");
        for name in [
            "scale_transversal",
            "ordering",
            "symbolic_fill",
            "eforest_postorder",
            "supernode_partition",
            "graph_build",
            "numeric",
        ] {
            let v = phases
                .get(name)
                .and_then(|j| j.as_num())
                .unwrap_or_else(|| panic!("{}: phase {name} missing", m.name));
            assert!(v >= 0.0, "{}: phase {name} negative", m.name);
        }
        assert_eq!(
            doc.get("status")
                .and_then(|s| s.get("kind"))
                .and_then(|k| k.as_str()),
            Some("ok"),
            "{}",
            m.name
        );
    }
}

#[test]
fn failed_runs_report_their_status() {
    // A structurally singular matrix: the report must still build and
    // validate, with status.kind = "singular".
    let a = CscMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 0, 2.0), (2, 2, 3.0)]).unwrap();
    let (result, report, _session) = factor_reported(&a, &Options::default(), "singular3");
    assert!(result.is_err());
    let doc = parse(&report.to_json()).expect("report is valid JSON");
    validate_run_report(&doc).expect("failed-run report schema-validates");
    assert_eq!(
        doc.get("status").and_then(|s| s.get("ok")),
        Some(&splu_bench::json::Json::Bool(false))
    );
    assert_eq!(
        doc.get("status")
            .and_then(|s| s.get("kind"))
            .and_then(|k| k.as_str()),
        Some("singular")
    );
}

#[test]
fn chrome_trace_shows_all_phases_and_both_processes_on_one_epoch() {
    let m = &paper_suite(Scale::Reduced)[0];
    let opts = Options {
        threads: 2,
        front_threads: 2,
        ..Options::default()
    };
    let (result, _report, session) = factor_reported(&m.a, &opts, m.name);
    result.expect("factorization succeeds");
    let json = session.chrome_json();
    let doc = parse(&json).expect("chrome trace is valid JSON");
    let n_events = validate_chrome_trace(&doc).expect("chrome trace schema-validates");
    assert!(n_events > 0);
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    // Span names from complete events; track/process names from the
    // metadata events' `args.name`.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    let meta_names: Vec<&str> = events
        .iter()
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
        })
        .collect();
    // The driver's phase spans are all present...
    for phase in [
        "scale_transversal",
        "ordering",
        "symbolic_fill",
        "eforest_postorder",
        "supernode_partition",
        "graph_build",
        "numeric",
    ] {
        assert!(names.contains(&phase), "missing phase span {phase}");
    }
    // ...the pipeline and numeric-executor processes are both named...
    assert!(meta_names.contains(&"pipeline"));
    assert!(meta_names.contains(&"numeric executor"));
    // ...front threads have their own named tracks...
    assert!(
        meta_names.iter().any(|n| n.starts_with("front-")),
        "no front-thread track metadata"
    );
    // ...and numeric Factor/Update task spans appear under pid 1.
    assert!(
        events.iter().any(|e| {
            e.get("pid").and_then(|p| p.as_num()) == Some(1.0)
                && e.get("name")
                    .and_then(|n| n.as_str())
                    .is_some_and(|n| n.starts_with("F(") || n.starts_with("U("))
        }),
        "no labelled numeric task spans"
    );
    // Every complete event sits on the shared epoch: ts >= 0 and within
    // an hour (i.e. not absolute wall-clock microseconds).
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) == Some("X") {
            let ts = e.get("ts").and_then(|t| t.as_num()).unwrap();
            assert!((0.0..3.6e9).contains(&ts), "timestamp {ts} off-epoch");
        }
    }
}

#[test]
fn perturbed_columns_counter_matches_health() {
    use parsplu::core::BreakdownPolicy;
    // A matrix engineered to need pivot perturbation: a zero column
    // tail under threshold pivoting with the Perturb policy.
    let a = CscMatrix::from_triplets(
        3,
        3,
        &[
            (0, 0, 1.0),
            (1, 0, 1.0),
            (0, 1, 1.0),
            (1, 1, 1.0),
            (2, 2, 1.0),
        ],
    )
    .unwrap();
    let opts = Options {
        breakdown: BreakdownPolicy::perturb_default(),
        ..Options::default()
    };
    let session = ObsSession::new();
    // Structurally fine but numerically hopeless inputs may still error
    // under other policies; this test only pins the counter when
    // perturbation ran.
    if let Ok(lu) = SparseLu::factor_observed(&a, &opts, &session) {
        assert_eq!(
            session.metrics().get(Counter::PerturbedColumns),
            lu.health().perturbed_columns.len() as u64
        );
    }
}
