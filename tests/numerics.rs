//! Numerical property tests: the supernodal factorization against the
//! Gilbert–Peierls baseline and the dense oracle, with proptest-driven
//! random matrices.

use proptest::prelude::*;

use parsplu::core::gp::gp_factor;
use parsplu::core::{Options, SparseLu, TaskGraphKind};
use parsplu::dense::{lu_full, lu_solve, DenseMat};
use parsplu::sparse::{relative_residual, CscMatrix};

/// Strategy: a random well-conditioned sparse matrix (diagonally dominant)
/// plus a right-hand side.
fn matrix_and_rhs(max_n: usize) -> impl Strategy<Value = (CscMatrix, Vec<f64>)> {
    (2..=max_n).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0..n, 0..n, -1.0_f64..1.0), 0..5 * n);
        let rhs = proptest::collection::vec(-2.0_f64..2.0, n);
        (entries, rhs).prop_map(move |(extra, b)| {
            let mut trips: Vec<(usize, usize, f64)> =
                (0..n).map(|i| (i, i, 6.0 + (i % 3) as f64)).collect();
            trips.extend(extra);
            (
                CscMatrix::from_triplets(n, n, &trips).expect("valid triplets"),
                b,
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full pipeline is backward stable on random sparse systems, for
    /// both task graphs.
    #[test]
    fn supernodal_solver_is_backward_stable((a, b) in matrix_and_rhs(40)) {
        for task_graph in [TaskGraphKind::EForest, TaskGraphKind::SStar] {
            let opts = Options { task_graph, ..Options::default() };
            let lu = SparseLu::factor(&a, &opts).expect("diagonally dominant");
            let x = lu.solve(&b);
            let r = relative_residual(&a, &x, &b);
            prop_assert!(r < 1e-11, "residual {} with {:?}", r, task_graph);
        }
    }

    /// Supernodal, Gilbert–Peierls and dense-oracle solutions agree.
    #[test]
    fn three_solvers_agree((a, b) in matrix_and_rhs(30)) {
        let n = a.ncols();
        let x_super = SparseLu::factor(&a, &Options::default())
            .expect("factors")
            .solve(&b);
        let mut x_gp = b.clone();
        gp_factor(&a, 0.0).expect("factors").solve(&mut x_gp);
        let mut dense = DenseMat::from_fn(n, n, |i, j| a.get(i, j));
        let piv = lu_full(&mut dense).expect("nonsingular");
        let mut x_dense = b.clone();
        lu_solve(&dense, &piv, &mut x_dense);
        for i in 0..n {
            prop_assert!((x_super[i] - x_gp[i]).abs() < 1e-8, "super vs gp at {}", i);
            prop_assert!((x_super[i] - x_dense[i]).abs() < 1e-8, "super vs dense at {}", i);
        }
    }

    /// Solving A·x for x recovered from a manufactured b reproduces x.
    #[test]
    fn manufactured_solution_roundtrip((a, x_true) in matrix_and_rhs(40)) {
        let b = a.mat_vec(&x_true);
        let lu = SparseLu::factor(&a, &Options::default()).expect("factors");
        let x = lu.solve(&b);
        let scale = x_true.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for i in 0..a.ncols() {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-9 * scale.max(1.0));
        }
    }
}

/// Ill-conditioned-but-solvable case: pivoting must rescue tiny diagonals.
#[test]
fn pivoting_rescues_tiny_diagonals() {
    let n = 25;
    let mut trips: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1e-13)).collect();
    for i in 0..n - 1 {
        trips.push((i + 1, i, 2.0 + (i % 5) as f64 * 0.3));
        trips.push((i, i + 1, 1.5 - (i % 3) as f64 * 0.2));
    }
    trips.push((0, n - 1, 0.7));
    let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
    let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
    let lu = SparseLu::factor(&a, &Options::default()).unwrap();
    let x = lu.solve(&b);
    assert!(relative_residual(&a, &x, &b) < 1e-9);
}

/// Permutation-heavy case: a matrix whose transversal is a long cycle.
#[test]
fn cyclic_structure_is_solved() {
    let n = 31;
    let mut trips: Vec<(usize, usize, f64)> = (0..n)
        .map(|i| ((i + 7) % n, i, 5.0 + (i % 4) as f64))
        .collect();
    for i in 0..n {
        trips.push(((i + 2) % n, i, 0.5));
    }
    let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
    let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let lu = SparseLu::factor(&a, &Options::default()).unwrap();
    let x = lu.solve(&b);
    assert!(relative_residual(&a, &x, &b) < 1e-11);
}
