//! File-level I/O integration tests: Matrix Market round-trips through the
//! filesystem and Harwell–Boeing ingestion feeding the full solver.

use parsplu::core::{Options, SparseLu};
use parsplu::matgen::{manufactured_rhs, paper_matrix, Scale};
use parsplu::sparse::io::{parse_harwell_boeing, read_matrix_market, write_matrix_market};
use parsplu::sparse::relative_residual;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("parsplu_io_{name}_{}.mtx", std::process::id()))
}

#[test]
fn matrix_market_file_roundtrip_preserves_solutions() {
    let a = paper_matrix("saylr4", Scale::Reduced).unwrap();
    let path = tmp("saylr4");
    write_matrix_market(&a, &path).unwrap();
    let a2 = read_matrix_market(&path).unwrap();
    assert_eq!(a, a2);

    let (_, b) = manufactured_rhs(&a, 3);
    let x1 = SparseLu::factor(&a, &Options::default()).unwrap().solve(&b);
    let x2 = SparseLu::factor(&a2, &Options::default())
        .unwrap()
        .solve(&b);
    assert_eq!(x1, x2, "file round-trip changed the solution");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn harwell_boeing_matrix_feeds_the_solver() {
    // A hand-written 4x4 RUA file (1-based, column-compressed).
    let text = "\
hb integration fixture                                                  hbfix
             6             1             2             3             0
RUA                        4             4             8             0
(8I3)           (8I3)           (4E16.8)
  1  3  5  7  9
  1  2  2  3  1  3  3  4
  4.00000000E+00  1.00000000E+00  5.00000000E+00 -1.00000000E+00  2.00000000E+00
  6.00000000E+00  1.50000000E+00  3.00000000E+00
";
    let a = parse_harwell_boeing(text).unwrap();
    assert_eq!(a.nrows(), 4);
    assert_eq!(a.nnz(), 8);
    let b = vec![1.0, -2.0, 0.5, 3.0];
    let lu = SparseLu::factor(&a, &Options::default()).unwrap();
    let x = lu.solve(&b);
    assert!(relative_residual(&a, &x, &b) < 1e-12);
}

#[test]
fn write_then_cli_style_read_of_every_generator() {
    for name in [
        "sherman3", "sherman5", "lnsp3937", "lns3937", "orsreg1", "saylr4", "goodwin",
    ] {
        let a = paper_matrix(name, Scale::Reduced).unwrap();
        let path = tmp(name);
        write_matrix_market(&a, &path).unwrap();
        let a2 = read_matrix_market(&path).unwrap();
        assert_eq!(a.nnz(), a2.nnz(), "{name}");
        assert_eq!(a.pattern(), a2.pattern(), "{name}");
        // Values survive the decimal round-trip exactly (we print with
        // enough digits).
        assert_eq!(a.values(), a2.values(), "{name}");
        let _ = std::fs::remove_file(&path);
    }
}
