//! Cancellation, deadline, and watchdog determinism suite (no failpoints
//! needed — these paths are part of the production API).
//!
//! Property: tripping a [`CancelToken`] at an *arbitrary* task boundary —
//! on any thread count and either mapping — always yields a structured
//! outcome (`Ok` or [`LuError::Cancelled`] with progress), never a hang,
//! never an escaped panic, and never corrupted state: re-running the
//! factorization afterwards without a budget produces bitwise-identical
//! solutions to a never-cancelled reference. Every factorization runs on
//! a watchdog thread with a hard test-side timeout, so a lost wakeup or a
//! non-draining abort fails the test instead of wedging the suite.

use parsplu::core::{CancelToken, LuError, Options, RunBudget, SparseLu, WatchdogConfig};
use parsplu::matgen::{manufactured_rhs, random_unsymmetric};
use parsplu::sched::Mapping;
use proptest::prelude::*;
use std::time::{Duration, Instant};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn opts(threads: usize, mapping: Mapping) -> Options {
    Options {
        threads,
        mapping,
        ..Options::default()
    }
}

fn arb_mapping() -> impl Strategy<Value = Mapping> {
    (0usize..2).prop_map(|i| {
        if i == 0 {
            Mapping::Static1D
        } else {
            Mapping::Dynamic
        }
    })
}

/// Runs `f` on its own thread and fails the test if it does not finish
/// within `limit` — the suite's hang detector. (On timeout the worker
/// thread is leaked; the test harness is exiting anyway.)
fn with_timeout<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(limit)
        .expect("factorization exceeded the test-side timeout (hang?)")
}

proptest! {
    // Each case sweeps all of THREADS; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cancelling after a proptest-chosen number of task acquisitions is
    /// always structured and recoverable, on every thread count and both
    /// mappings.
    #[test]
    fn cancellation_at_any_boundary_is_structured_and_recoverable(
        seed in 0u64..16,
        trip_at in 0usize..160,
        mapping in arb_mapping(),
    ) {
        let a = random_unsymmetric(40, 3, seed);
        let (_, b) = manufactured_rhs(&a, seed ^ 0xcafe);
        // Never-cancelled reference solution (single-threaded).
        let x_ref = SparseLu::factor(&a, &opts(1, mapping))
            .unwrap()
            .solve(&b);
        for &threads in &THREADS {
            let token = CancelToken::new();
            token.cancel_after_checkpoints(trip_at);
            let o = Options {
                budget: RunBudget::unbounded().with_token(token),
                ..opts(threads, mapping)
            };
            let (a2, b2) = (a.clone(), b.clone());
            let outcome = with_timeout(Duration::from_secs(60), move || {
                SparseLu::factor(&a2, &o).map(|lu| lu.solve(&b2))
            });
            match outcome {
                // Trip point past the end of the run: completes normally
                // and matches the reference bitwise.
                Ok(x) => prop_assert_eq!(&x, &x_ref, "threads={}", threads),
                Err(LuError::Cancelled { tasks_pending, .. }) => {
                    prop_assert!(tasks_pending > 0, "a cancelled run has pending tasks");
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "threads={threads}: expected Ok or Cancelled, got {other:?}"
                    )))
                }
            }
            // Whatever happened, an unbudgeted re-run in the same process
            // is bitwise identical to the reference — the cancelled run
            // left no shared state behind.
            let x2 = SparseLu::factor(&a, &opts(threads, mapping))
                .unwrap()
                .solve(&b);
            prop_assert_eq!(&x2, &x_ref, "re-run differs (threads={})", threads);
        }
    }
}

/// An already-expired deadline interrupts before any task runs, carrying
/// zero progress, on every thread count and both mappings.
#[test]
fn expired_deadline_is_deterministic() {
    let a = random_unsymmetric(40, 3, 2);
    for mapping in [Mapping::Static1D, Mapping::Dynamic] {
        for &threads in &THREADS {
            let o = Options {
                budget: RunBudget::unbounded().with_deadline(Instant::now()),
                ..opts(threads, mapping)
            };
            match SparseLu::factor(&a, &o).map(|_| ()) {
                Err(LuError::DeadlineExceeded {
                    columns_done,
                    tasks_pending,
                }) => {
                    assert_eq!(columns_done, 0, "threads={threads} {mapping:?}");
                    assert!(tasks_pending > 0);
                }
                other => {
                    panic!(
                        "threads={threads} {mapping:?}: expected DeadlineExceeded, got {other:?}"
                    )
                }
            }
        }
    }
}

/// A generous deadline and an armed watchdog leave a healthy run entirely
/// alone: it completes with the same bits as an unbudgeted one.
#[test]
fn armed_budget_does_not_perturb_a_healthy_run() {
    let a = random_unsymmetric(48, 3, 7);
    let (_, b) = manufactured_rhs(&a, 11);
    let x_ref = SparseLu::factor(&a, &opts(2, Mapping::Dynamic))
        .unwrap()
        .solve(&b);
    let o = Options {
        budget: RunBudget::unbounded()
            .with_deadline(Instant::now() + Duration::from_secs(600))
            .with_watchdog(WatchdogConfig::new(Duration::from_secs(10))),
        ..opts(2, Mapping::Dynamic)
    };
    let x = SparseLu::factor(&a, &o).unwrap().solve(&b);
    assert_eq!(x, x_ref, "budgeted healthy run must be bitwise identical");
}

/// Ctrl-C style cancellation mid-run from another thread: the run drains
/// to `Cancelled` (or completes if it won the race) and never hangs.
#[test]
fn asynchronous_cancel_mid_run_drains() {
    let a = random_unsymmetric(64, 4, 13);
    for trip_delay_us in [0u64, 50, 200, 1000] {
        let token = CancelToken::new();
        let canceller = {
            let t = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(trip_delay_us));
                t.cancel();
            })
        };
        let o = Options {
            budget: RunBudget::unbounded().with_token(token),
            ..opts(4, Mapping::Dynamic)
        };
        let a2 = a.clone();
        let outcome = with_timeout(Duration::from_secs(60), move || {
            SparseLu::factor(&a2, &o).map(|_| ())
        });
        match outcome {
            Ok(()) | Err(LuError::Cancelled { .. }) => {}
            other => panic!("delay={trip_delay_us}us: expected Ok or Cancelled, got {other:?}"),
        }
        canceller.join().unwrap();
    }
}
