//! Invariance gate for the parallel front half.
//!
//! The tentpole guarantee: with the default single-elimination ordering,
//! the threaded front half (chunked static symbolic fill, threaded
//! assembly, per-subtree postorder) is **bitwise identical** to the
//! sequential pipeline for every thread count — the executor only decides
//! *when* chunks run, never *what* they produce nor *where* it lands.
//! These tests pin that across the reduced paper suite and random
//! patterns (proptest), and check the opt-in multiple-elimination
//! ordering is a valid permutation with bounded extra fill.

use parsplu::core::{
    analyze, analyze_with, postorder_parallel, static_fill_parallel_with_parents, Options,
    OrderingChoice, SymbolicRequest,
};
use parsplu::matgen::{paper_suite, random_pattern, random_unsymmetric, Scale};
use parsplu::ordering::{
    column_min_degree, column_min_degree_multi, maximum_transversal, StructuralRank,
};
use parsplu::sparse::{Permutation, SparsityPattern};
use parsplu::symbolic::{postorder_permutation, static_symbolic_factorization, EliminationForest};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Permute a pattern onto a zero-free diagonal so the symbolic phase is
/// defined (suite patterns already have one; random ones need the
/// transversal).
fn diagonalized(p: &SparsityPattern) -> SparsityPattern {
    match maximum_transversal(p) {
        StructuralRank::Full(rp) => p.permuted(&rp, &Permutation::identity(p.ncols())),
        StructuralRank::Deficient { .. } => p.clone(),
    }
}

fn assert_parallel_fill_matches(p: &SparsityPattern, what: &str) {
    let f_seq = static_symbolic_factorization(p).expect("sequential fill succeeds");
    let forest_seq = EliminationForest::from_filled(&f_seq);
    let po_seq = postorder_permutation(&f_seq);
    for threads in THREADS {
        let req = SymbolicRequest::new().front_threads(threads);
        let (f_par, parents) =
            static_fill_parallel_with_parents(p, &req).expect("parallel fill succeeds");
        // L and U patterns: bitwise identical (same pointer and index
        // arrays), not merely isomorphic.
        assert_eq!(f_par.l, f_seq.l, "{what}: L differs at {threads} threads");
        assert_eq!(f_par.u, f_seq.u, "{what}: U differs at {threads} threads");
        // Eforest parents come straight from the skeleton pass.
        let forest_par = EliminationForest::from_parent_vec(parents);
        assert_eq!(
            forest_par, forest_seq,
            "{what}: eforest differs at {threads} threads"
        );
        // Postorder: segments stitched in root order equal the DFS.
        assert_eq!(
            postorder_parallel(&forest_par, threads),
            po_seq,
            "{what}: postorder differs at {threads} threads"
        );
    }
}

#[test]
fn parallel_fill_is_bitwise_identical_on_the_suite() {
    for m in paper_suite(Scale::Reduced) {
        // The suite patterns reach the symbolic phase transversal-permuted
        // and mindeg-ordered; test exactly that input.
        let p = diagonalized(m.a.pattern());
        let q = column_min_degree(&p);
        assert_parallel_fill_matches(&p.permuted(&q, &q), m.name);
    }
}

#[test]
fn analyze_with_front_threads_is_bitwise_identical_end_to_end() {
    for m in paper_suite(Scale::Reduced) {
        let base = analyze(m.a.pattern(), &Options::default()).expect("analysis succeeds");
        for threads in THREADS {
            let opts = Options {
                front_threads: threads,
                ..Options::default()
            };
            let req = SymbolicRequest::from_options(&opts);
            let sym = analyze_with(m.a.pattern(), &opts, &req).expect("analysis succeeds");
            assert_eq!(sym.row_perm, base.row_perm, "{}@{threads}", m.name);
            assert_eq!(sym.col_perm, base.col_perm, "{}@{threads}", m.name);
            assert_eq!(sym.filled.l, base.filled.l, "{}@{threads}", m.name);
            assert_eq!(sym.filled.u, base.filled.u, "{}@{threads}", m.name);
            assert_eq!(
                sym.block_structure, base.block_structure,
                "{}@{threads}",
                m.name
            );
            assert_eq!(sym.stats.nnz_filled, base.stats.nnz_filled);
            assert_eq!(sym.stats.supernodes, base.stats.supernodes);
        }
    }
}

#[test]
fn mindeg_multi_is_a_valid_permutation_with_bounded_fill() {
    for m in paper_suite(Scale::Reduced) {
        let p = diagonalized(m.a.pattern());
        let q_single = column_min_degree(&p);
        let q_multi = column_min_degree_multi(&p);
        // A bijection over all columns (Permutation::from_vec validates on
        // construction; re-check through the round trip anyway).
        let mut seen = vec![false; p.ncols()];
        for j in 0..p.ncols() {
            let t = q_multi.new_of(j);
            assert!(!seen[t], "{}: column {j} maps to duplicate {t}", m.name);
            seen[t] = true;
        }
        // Fill within 1.25x of single-elimination on the suite.
        let fill = |q: &Permutation| {
            let pq = p.permuted(q, q);
            static_symbolic_factorization(&pq)
                .expect("zero-free diagonal survives symmetric permutation")
                .nnz_filled()
        };
        let (f_single, f_multi) = (fill(&q_single), fill(&q_multi));
        assert!(
            4 * f_multi <= 5 * f_single,
            "{}: multi fill {f_multi} vs single {f_single} exceeds 1.25x",
            m.name
        );
        // And the end-to-end driver accepts the option.
        let opts = Options {
            ordering: OrderingChoice::MinDegreeMulti,
            ..Options::default()
        };
        let sym = analyze(m.a.pattern(), &opts).expect("analysis succeeds");
        assert_eq!(sym.col_perm.len(), m.a.ncols());
    }
}

proptest! {
    // Each case runs 4 thread counts over a fresh random pattern; keep the
    // case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel symbolic fill, eforest parents and postorder are bitwise
    /// identical to the sequential path on random patterns of every
    /// shape the transversal can make factorable.
    #[test]
    fn parallel_fill_matches_sequential_on_random_patterns(
        n in 1usize..48,
        density in 0usize..6,
        seed in 0u64..1024,
    ) {
        let p = diagonalized(&random_pattern(n, n * density, seed));
        // Structurally singular draws (no transversal) have no symbolic
        // factorization to compare; skip them.
        if p.has_zero_free_diagonal() {
            assert_parallel_fill_matches(&p, "random pattern");
        }
    }

    /// The full driver (transversal, ordering, fill, postorder, blocks)
    /// is invariant in `front_threads` on random matrices.
    #[test]
    fn analyze_is_front_thread_invariant_on_random_matrices(
        n in 2usize..40,
        extra in 1usize..5,
        seed in 0u64..512,
    ) {
        let a = random_unsymmetric(n, extra, seed);
        let base = analyze(a.pattern(), &Options::default()).expect("analysis succeeds");
        for threads in [2usize, 8] {
            let opts = Options {
                front_threads: threads,
                ..Options::default()
            };
            let sym = analyze(a.pattern(), &opts).expect("analysis succeeds");
            prop_assert_eq!(&sym.filled.l, &base.filled.l);
            prop_assert_eq!(&sym.filled.u, &base.filled.u);
            prop_assert_eq!(&sym.col_perm, &base.col_perm);
            prop_assert_eq!(&sym.block_structure, &base.block_structure);
        }
    }
}
