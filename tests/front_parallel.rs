//! Invariance gate for the parallel front half.
//!
//! The tentpole guarantee: with the default single-elimination ordering,
//! the threaded front half (chunked static symbolic fill, threaded
//! assembly, per-subtree postorder) is **bitwise identical** to the
//! sequential pipeline for every thread count — the executor only decides
//! *when* chunks run, never *what* they produce nor *where* it lands.
//! These tests pin that across the reduced paper suite and random
//! patterns (proptest), and check the opt-in multiple-elimination
//! ordering is a valid permutation with bounded extra fill.

use parsplu::core::{
    analyze, analyze_with, postorder_parallel, postorder_parallel_obs,
    static_fill_parallel_with_parents, ObsSession, Options, OrderingChoice, SymbolicRequest,
};
use parsplu::matgen::{paper_suite, random_pattern, random_unsymmetric, Scale};
use parsplu::ordering::{
    column_min_degree, column_min_degree_multi, maximum_transversal, StructuralRank,
};
use parsplu::sparse::{Permutation, SparsityPattern};
use parsplu::symbolic::{postorder_permutation, static_symbolic_factorization, EliminationForest};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Permute a pattern onto a zero-free diagonal so the symbolic phase is
/// defined (suite patterns already have one; random ones need the
/// transversal).
fn diagonalized(p: &SparsityPattern) -> SparsityPattern {
    match maximum_transversal(p) {
        StructuralRank::Full(rp) => p.permuted(&rp, &Permutation::identity(p.ncols())),
        StructuralRank::Deficient { .. } => p.clone(),
    }
}

fn assert_parallel_fill_matches(p: &SparsityPattern, what: &str) {
    let f_seq = static_symbolic_factorization(p).expect("sequential fill succeeds");
    let forest_seq = EliminationForest::from_filled(&f_seq);
    let po_seq = postorder_permutation(&f_seq);
    for threads in THREADS {
        let req = SymbolicRequest::new().front_threads(threads);
        let (f_par, parents) =
            static_fill_parallel_with_parents(p, &req).expect("parallel fill succeeds");
        // L and U patterns: bitwise identical (same pointer and index
        // arrays), not merely isomorphic.
        assert_eq!(f_par.l, f_seq.l, "{what}: L differs at {threads} threads");
        assert_eq!(f_par.u, f_seq.u, "{what}: U differs at {threads} threads");
        // Eforest parents come straight from the skeleton pass.
        let forest_par = EliminationForest::from_parent_vec(parents);
        assert_eq!(
            forest_par, forest_seq,
            "{what}: eforest differs at {threads} threads"
        );
        // Postorder: segments stitched in root order equal the DFS.
        assert_eq!(
            postorder_parallel(&forest_par, threads),
            po_seq,
            "{what}: postorder differs at {threads} threads"
        );
    }
}

#[test]
fn parallel_fill_is_bitwise_identical_on_the_suite() {
    for m in paper_suite(Scale::Reduced) {
        // The suite patterns reach the symbolic phase transversal-permuted
        // and mindeg-ordered; test exactly that input.
        let p = diagonalized(m.a.pattern());
        let q = column_min_degree(&p);
        assert_parallel_fill_matches(&p.permuted(&q, &q), m.name);
    }
}

#[test]
fn analyze_with_front_threads_is_bitwise_identical_end_to_end() {
    for m in paper_suite(Scale::Reduced) {
        let base = analyze(m.a.pattern(), &Options::default()).expect("analysis succeeds");
        for threads in THREADS {
            let opts = Options {
                front_threads: threads,
                ..Options::default()
            };
            let req = SymbolicRequest::from_options(&opts);
            let sym = analyze_with(m.a.pattern(), &opts, &req).expect("analysis succeeds");
            assert_eq!(sym.row_perm, base.row_perm, "{}@{threads}", m.name);
            assert_eq!(sym.col_perm, base.col_perm, "{}@{threads}", m.name);
            assert_eq!(sym.filled.l, base.filled.l, "{}@{threads}", m.name);
            assert_eq!(sym.filled.u, base.filled.u, "{}@{threads}", m.name);
            assert_eq!(
                sym.block_structure, base.block_structure,
                "{}@{threads}",
                m.name
            );
            assert_eq!(sym.stats.nnz_filled, base.stats.nnz_filled);
            assert_eq!(sym.stats.supernodes, base.stats.supernodes);
        }
    }
}

#[test]
fn traced_front_half_is_bitwise_identical_to_untraced() {
    // Observability must be a pure observer: a session recording full
    // event streams changes *nothing* about the front half's output at
    // any thread count.
    for m in paper_suite(Scale::Reduced).into_iter().take(3) {
        let p = diagonalized(m.a.pattern());
        let q = column_min_degree(&p);
        let pq = p.permuted(&q, &q);
        for threads in THREADS {
            let plain_req = SymbolicRequest::new().front_threads(threads);
            let (f_plain, par_plain) =
                static_fill_parallel_with_parents(&pq, &plain_req).expect("untraced fill");
            let session = ObsSession::with_events();
            let traced_req = SymbolicRequest::new()
                .front_threads(threads)
                .observe(session.clone());
            let (f_traced, par_traced) =
                static_fill_parallel_with_parents(&pq, &traced_req).expect("traced fill");
            assert_eq!(f_traced.l, f_plain.l, "{}@{threads}: L differs", m.name);
            assert_eq!(f_traced.u, f_plain.u, "{}@{threads}: U differs", m.name);
            assert_eq!(
                par_traced, par_plain,
                "{}@{threads}: parents differ",
                m.name
            );
            let forest = EliminationForest::from_parent_vec(par_plain);
            assert_eq!(
                postorder_parallel_obs(&forest, threads, Some(&session)),
                postorder_parallel(&forest, threads),
                "{}@{threads}: postorder differs under tracing",
                m.name
            );
        }
    }
}

#[test]
fn traced_end_to_end_factorization_is_bitwise_identical() {
    use parsplu::core::SparseLu;
    let m = &paper_suite(Scale::Reduced)[1];
    let b: Vec<f64> = (0..m.a.ncols()).map(|i| (i % 11) as f64 - 5.0).collect();
    let opts = Options {
        threads: 2,
        front_threads: 2,
        ..Options::default()
    };
    let plain = SparseLu::factor(&m.a, &opts).expect("untraced factorization");
    let session = ObsSession::with_events();
    let traced = SparseLu::factor_observed(&m.a, &opts, &session).expect("traced factorization");
    // Same factors bit-for-bit: the solves agree exactly.
    let (x_plain, x_traced) = (plain.solve(&b), traced.solve(&b));
    assert_eq!(
        x_plain, x_traced,
        "{}: traced solve differs bitwise",
        m.name
    );
}

#[test]
fn front_spans_land_on_the_session_trace_as_chrome_tracks() {
    use splu_bench::json::{parse, validate_chrome_trace};
    let m = &paper_suite(Scale::Reduced)[0];
    let p = diagonalized(m.a.pattern());
    let q = column_min_degree(&p);
    let pq = p.permuted(&q, &q);
    let session = ObsSession::with_events();
    let req = SymbolicRequest::new()
        .front_threads(4)
        .observe(session.clone());
    let (f, parents) = static_fill_parallel_with_parents(&pq, &req).expect("fill succeeds");
    let forest = EliminationForest::from_parent_vec(parents);
    postorder_parallel_obs(&forest, 4, Some(&session));
    drop(f);
    // The session's own export must already be a valid Chrome trace with
    // the front half's spans on driver + front tracks.
    let doc = parse(&session.chrome_json()).expect("valid JSON");
    validate_chrome_trace(&doc).expect("valid Chrome trace");
    let events = session.span_events();
    assert!(
        events.iter().any(|e| e.name == "fill_skeleton"),
        "no skeleton span"
    );
    assert!(
        events.iter().any(|e| e.name.starts_with("fill ")),
        "no per-chunk fill spans"
    );
    assert!(
        events.iter().any(|e| e.name.starts_with("postorder root ")),
        "no postorder segment spans"
    );
    // Chunk and postorder spans sit on front tracks (tid >= 1), the
    // skeleton on the driver track.
    for e in &events {
        if e.name.starts_with("fill ") || e.name.starts_with("postorder root ") {
            assert!(e.track.tid() >= 1, "span {} not on a front track", e.name);
        }
    }
}

#[test]
fn mindeg_multi_is_a_valid_permutation_with_bounded_fill() {
    for m in paper_suite(Scale::Reduced) {
        let p = diagonalized(m.a.pattern());
        let q_single = column_min_degree(&p);
        let q_multi = column_min_degree_multi(&p);
        // A bijection over all columns (Permutation::from_vec validates on
        // construction; re-check through the round trip anyway).
        let mut seen = vec![false; p.ncols()];
        for j in 0..p.ncols() {
            let t = q_multi.new_of(j);
            assert!(!seen[t], "{}: column {j} maps to duplicate {t}", m.name);
            seen[t] = true;
        }
        // Fill within 1.25x of single-elimination on the suite.
        let fill = |q: &Permutation| {
            let pq = p.permuted(q, q);
            static_symbolic_factorization(&pq)
                .expect("zero-free diagonal survives symmetric permutation")
                .nnz_filled()
        };
        let (f_single, f_multi) = (fill(&q_single), fill(&q_multi));
        assert!(
            4 * f_multi <= 5 * f_single,
            "{}: multi fill {f_multi} vs single {f_single} exceeds 1.25x",
            m.name
        );
        // And the end-to-end driver accepts the option.
        let opts = Options {
            ordering: OrderingChoice::MinDegreeMulti,
            ..Options::default()
        };
        let sym = analyze(m.a.pattern(), &opts).expect("analysis succeeds");
        assert_eq!(sym.col_perm.len(), m.a.ncols());
    }
}

proptest! {
    // Each case runs 4 thread counts over a fresh random pattern; keep the
    // case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel symbolic fill, eforest parents and postorder are bitwise
    /// identical to the sequential path on random patterns of every
    /// shape the transversal can make factorable.
    #[test]
    fn parallel_fill_matches_sequential_on_random_patterns(
        n in 1usize..48,
        density in 0usize..6,
        seed in 0u64..1024,
    ) {
        let p = diagonalized(&random_pattern(n, n * density, seed));
        // Structurally singular draws (no transversal) have no symbolic
        // factorization to compare; skip them.
        if p.has_zero_free_diagonal() {
            assert_parallel_fill_matches(&p, "random pattern");
        }
    }

    /// The full driver (transversal, ordering, fill, postorder, blocks)
    /// is invariant in `front_threads` on random matrices.
    #[test]
    fn analyze_is_front_thread_invariant_on_random_matrices(
        n in 2usize..40,
        extra in 1usize..5,
        seed in 0u64..512,
    ) {
        let a = random_unsymmetric(n, extra, seed);
        let base = analyze(a.pattern(), &Options::default()).expect("analysis succeeds");
        for threads in [2usize, 8] {
            let opts = Options {
                front_threads: threads,
                ..Options::default()
            };
            let sym = analyze(a.pattern(), &opts).expect("analysis succeeds");
            prop_assert_eq!(&sym.filled.l, &base.filled.l);
            prop_assert_eq!(&sym.filled.u, &base.filled.u);
            prop_assert_eq!(&sym.col_perm, &base.col_perm);
            prop_assert_eq!(&sym.block_structure, &base.block_structure);
        }
    }
}
