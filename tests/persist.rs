//! Journal-encoding tests: proptest round-trips of every record type,
//! torn-write recovery, CRC-corruption rejection, and compaction
//! equivalence (the compacted journal replays to the same records the
//! snapshot described).

use parsplu::persist::{
    crc32, decode_record, encode_record, frame_record, read_journal, Damage, Durability, Journal,
    Record,
};
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parsplu_persist_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journal_path(dir: &std::path::Path) -> PathBuf {
    dir.join("sessions.journal")
}

/// A whitespace-free token (session names and job ids are tokens by
/// protocol — the line protocol splits on spaces).
fn arb_token() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..36, 1..10).prop_map(|digits| {
        digits
            .into_iter()
            .map(|d| b"abcdefghijklmnopqrstuvwxyz0123456789"[d] as char)
            .collect()
    })
}

/// An arbitrary job line: tokens joined by spaces, possibly with flag-ish
/// and path-ish shapes mixed in, never a newline (lines are framed by the
/// protocol before they reach the journal).
fn arb_line() -> impl Strategy<Value = String> {
    (arb_token(), proptest::collection::vec(arb_token(), 0..5)).prop_map(|(op, rest)| {
        let mut line = op;
        for (i, t) in rest.into_iter().enumerate() {
            line.push(' ');
            if i % 3 == 2 {
                line.push_str("--");
            }
            line.push_str(&t);
        }
        line
    })
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        (0usize..3, 0u64..1000),
        arb_token(),
        arb_line(),
        proptest::collection::vec(arb_token(), 0..6),
    )
        .prop_map(|((kind, n), token, line, ids)| match kind {
            0 => Record::Job {
                job_id: if n % 2 == 0 { Some(token) } else { None },
                line,
            },
            1 => Record::AppliedIds {
                session: token,
                ids,
            },
            _ => Record::Compacted { live_sessions: n },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every record type round-trips through its payload encoding.
    #[test]
    fn records_round_trip_through_the_payload_encoding(rec in arb_record()) {
        let payload = encode_record(&rec);
        let back = decode_record(&payload).expect("decode what encode wrote");
        prop_assert_eq!(back, rec);
    }

    /// Whole journals round-trip through the file: append N records,
    /// reopen, recover exactly those records with no damage.
    #[test]
    fn journals_round_trip_through_the_file(recs in proptest::collection::vec(arb_record(), 1..12)) {
        let dir = state_dir("roundtrip");
        {
            let (journal, recovered) = Journal::open(&dir, Durability::Relaxed).unwrap();
            prop_assert!(recovered.records.is_empty());
            for r in &recs {
                journal.append(r).unwrap();
            }
            journal.sync().unwrap();
        }
        let recovered = read_journal(&journal_path(&dir)).unwrap();
        prop_assert_eq!(recovered.records, recs);
        prop_assert_eq!(recovered.damage, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A crash mid-append leaves a torn tail: recovery keeps every whole
    /// record, reports the damage, and reopening truncates so the next
    /// append lands on a clean prefix.
    #[test]
    fn torn_tails_recover_to_the_valid_prefix(
        recs in proptest::collection::vec(arb_record(), 1..8),
        cut in 1usize..8,
    ) {
        let dir = state_dir("torn");
        {
            let (journal, _) = Journal::open(&dir, Durability::Strict).unwrap();
            for r in &recs {
                journal.append(r).unwrap();
            }
        }
        let path = journal_path(&dir);
        let full = std::fs::read(&path).unwrap();
        // Tear the last record: drop between 1 byte and its whole frame.
        let last_frame = frame_record(recs.last().unwrap()).len();
        let cut = cut.min(last_frame);
        std::fs::write(&path, &full[..full.len() - cut]).unwrap();

        let recovered = read_journal(&path).unwrap();
        prop_assert_eq!(&recovered.records[..], &recs[..recs.len() - 1]);
        prop_assert_eq!(
            recovered.damage,
            Some(Damage::TornTail { dropped_bytes: (last_frame - cut) as u64 })
        );

        // Reopen (truncates the tear), append a fresh record, re-read:
        // the prefix plus the new record, no damage.
        let extra = Record::Compacted { live_sessions: 7 };
        {
            let (journal, r) = Journal::open(&dir, Durability::Strict).unwrap();
            prop_assert_eq!(&r.records[..], &recs[..recs.len() - 1]);
            journal.append(&extra).unwrap();
        }
        let recovered = read_journal(&path).unwrap();
        let mut want: Vec<Record> = recs[..recs.len() - 1].to_vec();
        want.push(extra);
        prop_assert_eq!(recovered.records, want);
        prop_assert_eq!(recovered.damage, None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn crc_corruption_is_rejected_and_reading_stops_there() {
    let dir = state_dir("crc");
    let recs = vec![
        Record::Job {
            job_id: Some("j1".into()),
            line: "analyze a /tmp/a.mtx".into(),
        },
        Record::AppliedIds {
            session: "a".into(),
            ids: vec!["j1".into()],
        },
        Record::Job {
            job_id: None,
            line: "factor a /tmp/a.mtx".into(),
        },
    ];
    {
        let (journal, _) = Journal::open(&dir, Durability::Strict).unwrap();
        for r in &recs {
            journal.append(r).unwrap();
        }
    }
    let path = journal_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one payload byte inside the SECOND record.
    let header = b"parsplu-journal/1\n".len();
    let first_frame = frame_record(&recs[0]).len();
    let target = header + first_frame + 8 + 2; // 2 bytes into record 2's payload
    bytes[target] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let recovered = read_journal(&path).unwrap();
    assert_eq!(
        recovered.records,
        recs[..1].to_vec(),
        "stops at the corruption"
    );
    match recovered.damage {
        Some(Damage::Corrupt {
            offset,
            dropped_bytes,
        }) => {
            assert_eq!(offset, (header + first_frame) as u64);
            assert!(dropped_bytes > 0);
        }
        other => panic!("wanted Corrupt damage, got {other:?}"),
    }
    // The CRC itself behaves: the reference check value holds.
    assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_files_are_never_treated_as_journals() {
    let dir = state_dir("foreign");
    std::fs::create_dir_all(&dir).unwrap();
    let path = journal_path(&dir);
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "this is someone's data, not a journal").unwrap();
    drop(f);
    let before = std::fs::read(&path).unwrap();
    assert!(
        read_journal(&path).is_err(),
        "wrong header must be an error"
    );
    assert!(
        Journal::open(&dir, Durability::Strict).is_err(),
        "open must refuse rather than clobber"
    );
    assert_eq!(std::fs::read(&path).unwrap(), before, "file left untouched");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_replaces_the_log_with_an_equivalent_snapshot() {
    let dir = state_dir("compact");
    let (journal, _) = Journal::open(&dir, Durability::Strict).unwrap();
    for i in 0..20 {
        journal
            .append(&Record::Job {
                job_id: Some(format!("j{i}")),
                line: format!("refactor a /tmp/a.mtx --job-id j{i}"),
            })
            .unwrap();
    }
    let before_bytes = journal.bytes();

    // An aborted gather (session busy) must leave the file unchanged.
    assert!(!journal.compact_with(|| None).unwrap());
    assert_eq!(journal.bytes(), before_bytes);

    // A real snapshot: the live state described in 3 records.
    let snapshot = vec![
        Record::Job {
            job_id: None,
            line: "analyze a /tmp/a.mtx".into(),
        },
        Record::Job {
            job_id: Some("j19".into()),
            line: "refactor a /tmp/a.mtx --job-id j19".into(),
        },
        Record::AppliedIds {
            session: "a".into(),
            ids: (0..20).map(|i| format!("j{i}")).collect(),
        },
        Record::Compacted { live_sessions: 1 },
    ];
    let snap2 = snapshot.clone();
    assert!(journal.compact_with(move || Some(snap2)).unwrap());
    assert!(
        journal.bytes() < before_bytes,
        "compaction must shrink the log ({} -> {})",
        before_bytes,
        journal.bytes()
    );

    // Equivalence: the rewritten file recovers to exactly the snapshot,
    // and appends after compaction extend it normally.
    let tail = Record::Job {
        job_id: Some("j20".into()),
        line: "refactor a /tmp/a.mtx --job-id j20".into(),
    };
    journal.append(&tail).unwrap();
    drop(journal);
    let recovered = read_journal(&journal_path(&dir)).unwrap();
    let mut want = snapshot;
    want.push(tail);
    assert_eq!(recovered.records, want);
    assert_eq!(recovered.damage, None);
    let _ = std::fs::remove_dir_all(&dir);
}
