//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`] with chainable `sample_size` / `warm_up_time` /
//! `measurement_time`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock harness that
//! prints the median, minimum, and mean per-iteration time.
//!
//! No statistical analysis, plots, or baseline persistence: benches built
//! against this stub compile and produce honest timings, nothing more.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// No-op kept for signature compatibility with real criterion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the untimed warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for timed samples per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id);
        self
    }

    /// Ends the group (printing is per-benchmark; nothing left to do).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up budget is spent, counting
        // iterations to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Spread the measurement budget over `sample_size` samples, each a
        // batch large enough to be timeable.
        let budget = self.measurement_time.as_secs_f64();
        let per_sample = budget / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{group}/{id}: median {} (min {}, mean {}, {} samples)",
            fmt_seconds(median),
            fmt_seconds(s[0]),
            fmt_seconds(mean),
            s.len()
        );
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by this stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; one routine call per setup.
    SmallInput,
    /// Inputs are large; one routine call per setup.
    LargeInput,
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
