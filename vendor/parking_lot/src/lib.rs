//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics: `lock()`
//! / `read()` / `write()` return guards directly (poisoning is swallowed —
//! a panicking critical section aborts the test that caused it anyway), and
//! [`Condvar::wait`] takes `&mut MutexGuard` like parking_lot's.
//!
//! Only the surface this workspace uses is provided: [`Mutex`],
//! [`Condvar`], [`RwLock`] and their guards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard of a [`Mutex`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can move the std guard
/// out and back without unsafe code.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// Whether a [`Condvar::wait_for`] returned because of a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing `guard`'s mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses, releasing `guard`'s
    /// mutex while parked. Returns whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader–writer lock; `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access RAII guard of a [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-access RAII guard of a [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a reader–writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking the current thread.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive access, blocking the current thread.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(r1.len() + r2.len(), 6);
        drop((r1, r2));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(r.timed_out());
        drop(g);
        assert!(!std::thread::panicking());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
