//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the `rand 0.8` API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` (half-open and inclusive integer ranges, half-open
//! float ranges) and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — the same construction `rand`'s `SmallRng` uses on 64-bit
//! targets, deterministic for a given seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generator constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type with a uniform sampler over an interval.
///
/// The single generic [`SampleRange`] impl below ties the sampled type to
/// the range's element type, so `gen_range(0.0..1.0)` infers `f64` from the
/// surrounding expression exactly as with the real `rand`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// A uniformly sampleable range; the argument type of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, in the style of `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    ///
    /// Matches rand 0.8's `Bernoulli`: `p >= 1` short-circuits without
    /// drawing; otherwise one `next_u64` is compared against `p · 2⁶⁴`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Maps 64 random bits to a double in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire's widening-multiply rejection sampler over `[0, range)`, matching
/// `rand 0.8`'s 64-bit `UniformInt` path bit for bit: `zone` is the largest
/// low-half product accepted without bias, and each rejected draw consumes
/// one `next_u64` exactly as the original does. Bit-exactness matters here:
/// tests seed `SmallRng` and assert over the resulting random ensembles.
fn lemire_u64(range: u64, rng: &mut dyn RngCore) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (range as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let range = (hi as i128 - lo as i128) as u64;
                (lo as i128 + lemire_u64(range, rng) as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let range = (hi as i128 - lo as i128) as u128 + 1;
                if range > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + lemire_u64(range as u64, rng) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, i64, i32, i16, u16, i8, u8);

impl SampleUniform for f64 {
    // rand 0.8's `UniformFloat<f64>::sample_single`: 52 random fraction
    // bits make `value1_2` uniform in [1, 2); the affine map and the
    // rejection of the (rounding-only) `res == hi` case are kept verbatim.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        let scale = hi - lo;
        loop {
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let res = value1_2 * scale + (lo - scale);
            if res < hi {
                return res;
            }
        }
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        let scale = hi - lo;
        loop {
            let bits = (rng.next_u64() >> 32) as u32;
            let value1_2 = f32::from_bits((bits >> 9) | (127u32 << 23));
            let res = value1_2 * scale + (lo - scale);
            if res < hi {
                return res;
            }
        }
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded through SplitMix64 — deterministic, 64-bit.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
