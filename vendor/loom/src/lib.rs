//! Offline stand-in for the [`loom`](https://docs.rs/loom) concurrency
//! model checker.
//!
//! Real loom virtualizes threads and explores *every* interleaving of the
//! instrumented synchronization operations with dynamic partial-order
//! reduction. That engine cannot be vendored here, so this stand-in keeps
//! loom's API shape and its checking *intent* with a bounded randomized
//! schedule explorer:
//!
//! * [`model`] runs the model body many times (default
//!   [`DEFAULT_ITERS`], override with the `LOOM_MAX_ITER` environment
//!   variable) on real OS threads;
//! * every instrumented operation — atomic access, mutex lock, condvar
//!   wait/notify, thread spawn — calls a schedule hook that injects a
//!   pseudo-random `yield_now`/micro-sleep, driven by a per-iteration
//!   seed, so each iteration exercises a different interleaving;
//! * a failing iteration panics with its iteration index so the seed can
//!   be replayed (`LOOM_SEED`).
//!
//! The guarantees are therefore probabilistic, not exhaustive: this is a
//! stress harness wearing loom's API, good at flushing out lost wakeups
//! and shutdown races, not a proof. Code written against it compiles
//! unchanged against real loom (`--cfg loom`), so swapping the real
//! checker in later is a `Cargo.toml` edit.

use std::sync::atomic::{AtomicU64, Ordering as O};

/// Iterations [`model`] runs when `LOOM_MAX_ITER` is unset.
pub const DEFAULT_ITERS: usize = 200;

/// Global schedule-perturbation state (seeded per model iteration).
static SCHED_STATE: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);

/// One SplitMix64 step on the shared schedule state. Threads race on the
/// counter, which only adds entropy to the schedule.
fn next_rand() -> u64 {
    let mut z = SCHED_STATE.fetch_add(0x9E3779B97F4A7C15, O::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Schedule hook: called before every instrumented synchronization
/// operation. Mostly runs through; sometimes yields; rarely sleeps a few
/// microseconds so sleeping/parked interleavings are reached too.
pub(crate) fn pause() {
    let r = next_rand();
    match r % 16 {
        0..=10 => {}
        11..=14 => std::thread::yield_now(),
        _ => std::thread::sleep(std::time::Duration::from_micros(r >> 59)),
    }
}

/// Runs `f` under the bounded randomized-schedule explorer.
///
/// Every iteration reseeds the schedule state; a panic inside `f` is
/// re-raised after printing the iteration index (replay a single schedule
/// with `LOOM_SEED=<i> LOOM_MAX_ITER=1`).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters: usize = std::env::var("LOOM_MAX_ITER")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_ITERS);
    let seed0: u64 = std::env::var("LOOM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    for i in 0..iters {
        SCHED_STATE.store(
            (seed0 + i as u64).wrapping_mul(0x2545F4914F6CDD1D) | 1,
            O::SeqCst,
        );
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = r {
            eprintln!("loom(stand-in): model failed at schedule iteration {i} (seed base {seed0})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Thread API mirroring `loom::thread` (real OS threads here).
pub mod thread {
    pub use std::thread::{sleep, yield_now, JoinHandle};

    /// Spawns a real thread; entry is a schedule point.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        crate::pause();
        std::thread::spawn(move || {
            crate::pause();
            f()
        })
    }
}

/// Synchronization API mirroring `loom::sync` (std types with schedule
/// hooks injected before every operation).
pub mod sync {
    pub use std::sync::{Arc, LockResult, WaitTimeoutResult};

    /// Guard type of [`Mutex`] (the std guard: the wrapper delegates).
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    /// Instrumented mutex with the std `LockResult` API loom exposes.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates the mutex.
        pub fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }

        /// Consumes the mutex, returning the protected value.
        pub fn into_inner(self) -> LockResult<T> {
            self.0.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock (schedule point).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            crate::pause();
            self.0.lock()
        }

        /// Attempts the lock without blocking (schedule point).
        pub fn try_lock(&self) -> std::sync::TryLockResult<MutexGuard<'_, T>> {
            crate::pause();
            self.0.try_lock()
        }
    }

    /// Instrumented condition variable.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// Creates the condvar.
        pub fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        /// Blocks until notified (schedule points around the wait).
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            crate::pause();
            self.0.wait(guard)
        }

        /// Blocks until notified or the timeout elapses.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: std::time::Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            crate::pause();
            self.0.wait_timeout(guard, dur)
        }

        /// Wakes one waiter (schedule point).
        pub fn notify_one(&self) {
            crate::pause();
            self.0.notify_one();
        }

        /// Wakes every waiter (schedule point).
        pub fn notify_all(&self) {
            crate::pause();
            self.0.notify_all();
        }
    }

    /// Instrumented atomics mirroring `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_common {
            ($name:ident, $std:ty, $t:ty) => {
                /// Instrumented atomic: every access is a schedule point.
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// Creates the atomic.
                    pub fn new(v: $t) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Loads the value (schedule point).
                    pub fn load(&self, o: Ordering) -> $t {
                        crate::pause();
                        self.0.load(o)
                    }

                    /// Stores a value (schedule point).
                    pub fn store(&self, v: $t, o: Ordering) {
                        crate::pause();
                        self.0.store(v, o)
                    }

                    /// Swaps the value (schedule point).
                    pub fn swap(&self, v: $t, o: Ordering) -> $t {
                        crate::pause();
                        self.0.swap(v, o)
                    }

                    /// Compare-exchange (schedule point).
                    pub fn compare_exchange(
                        &self,
                        cur: $t,
                        new: $t,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$t, $t> {
                        crate::pause();
                        self.0.compare_exchange(cur, new, ok, err)
                    }

                    /// Fetch-update loop (schedule point).
                    pub fn fetch_update<F>(
                        &self,
                        ok: Ordering,
                        err: Ordering,
                        f: F,
                    ) -> Result<$t, $t>
                    where
                        F: FnMut($t) -> Option<$t>,
                    {
                        crate::pause();
                        self.0.fetch_update(ok, err, f)
                    }

                    /// Consumes the atomic, returning the value.
                    pub fn into_inner(self) -> $t {
                        self.0.into_inner()
                    }
                }
            };
        }

        macro_rules! atomic_arith {
            ($name:ident, $t:ty) => {
                impl $name {
                    /// Adds, returning the previous value (schedule point).
                    pub fn fetch_add(&self, v: $t, o: Ordering) -> $t {
                        crate::pause();
                        self.0.fetch_add(v, o)
                    }

                    /// Subtracts, returning the previous value (schedule
                    /// point).
                    pub fn fetch_sub(&self, v: $t, o: Ordering) -> $t {
                        crate::pause();
                        self.0.fetch_sub(v, o)
                    }
                }
            };
        }

        atomic_common!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        atomic_common!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic_common!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic_common!(AtomicU8, std::sync::atomic::AtomicU8, u8);
        atomic_arith!(AtomicUsize, usize);
        atomic_arith!(AtomicU64, u64);
        atomic_arith!(AtomicU8, u8);

        impl AtomicBool {
            /// Logical-or, returning the previous value (schedule point).
            pub fn fetch_or(&self, v: bool, o: Ordering) -> bool {
                crate::pause();
                self.0.fetch_or(v, o)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn model_runs_and_reseeds() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        std::env::set_var("LOOM_MAX_ITER", "8");
        super::model(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        std::env::remove_var("LOOM_MAX_ITER");
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = super::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock().unwrap() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
