//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`thread::scope`] with crossbeam's signature (spawn closures
//! receive a scope handle; panics surface as an `Err` from `scope` rather
//! than unwinding through it), implemented on `std::thread::scope`. Only the
//! surface this workspace uses is provided.

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads tied to a [`scope`] invocation.
    ///
    /// `Copy` so it can be moved into spawned closures for nested spawns,
    /// matching crossbeam's `&Scope` ergonomics.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle so
        /// it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope handle; joins every spawned thread before
    /// returning. A panic in any spawned thread (or in `f`) is captured and
    /// returned as `Err`, like crossbeam's `scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_the_handle() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panic_is_reported_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
