//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_perturb`, [`Just`],
//! strategies for integer/float ranges and tuples, [`collection::vec`],
//! [`ProptestConfig`], and the `proptest!` / `prop_assert*!` macros.
//!
//! Differences from real proptest, deliberate for an offline build:
//! failing cases are NOT shrunk (the panic reports the case number and the
//! deterministic per-test seed instead), and there is no persistence file.
//! Case generation is fully deterministic: the RNG seed is a hash of the
//! test name, so a failure reproduces on every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG handed to strategies (SplitMix64).
///
/// Also the type passed by value to `prop_perturb` closures; its only
/// public entropy source is [`TestRng::next_u64`].
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A double in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator (used by `prop_perturb`).
    pub fn fork(&mut self) -> TestRng {
        TestRng::from_seed(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a second, value-dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Transforms generated values with `f`, handing it a private RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Result of [`Strategy::prop_perturb`].
#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        (self.f)(value, rng.fork())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: an exact `usize` or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Test-runner configuration and errors.
pub mod test_runner {
    /// How a `proptest!` block runs its cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed `prop_assert*!` inside a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Support functions for the `proptest!` macro (not part of the public
/// proptest API, but must be reachable from macro expansions).
pub mod sugar {
    use super::test_runner::TestCaseError;
    use super::TestRng;

    /// Stable 64-bit FNV-1a hash of a test name — the per-test seed.
    pub fn seed_of(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `f` once per case with a deterministic RNG; panics on failure
    /// with the case index and seed so the run can be reproduced.
    pub fn run_cases<F>(cases: u32, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = seed_of(name);
        for case in 0..cases {
            let mut rng =
                TestRng::from_seed(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if let Err(e) = f(&mut rng) {
                panic!(
                    "proptest case {}/{} of `{}` failed (seed {:#x}): {}",
                    case + 1,
                    cases,
                    name,
                    seed,
                    e
                );
            }
        }
    }
}

/// The usual `use proptest::prelude::*;` import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy, TestRng};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional leading `#![proptest_config(...)]`, multiple test
/// functions per block, and pattern arguments (`(a, b) in strat`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::sugar::run_cases(config.cases, stringify!($name), |rng| {
                    $( let $arg = $crate::Strategy::generate(&$strat, rng); )*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Like `assert!` but fails only the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` but fails only the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}",
                    stringify!($left),
                    stringify!($right)
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Like `assert_ne!` but fails only the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} != {}",
                    stringify!($left),
                    stringify!($right)
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..200 {
            let v = (1usize..12, -5i32..=5, -1.0f64..1.0).generate(&mut rng);
            assert!((1..12).contains(&v.0));
            assert!((-5..=5).contains(&v.1));
            assert!((-1.0..1.0).contains(&v.2));
        }
    }

    #[test]
    fn vec_strategy_respects_length_specs() {
        let mut rng = TestRng::from_seed(7);
        let exact = collection::vec(0usize..10, 5usize).generate(&mut rng);
        assert_eq!(exact.len(), 5);
        for _ in 0..100 {
            let ranged = collection::vec(0usize..10, 0usize..8).generate(&mut rng);
            assert!(ranged.len() < 8);
        }
    }

    #[test]
    fn flat_map_threads_dependent_sizes() {
        let strat =
            (1usize..6).prop_flat_map(|n| collection::vec(0..n, n).prop_map(move |v| (n, v)));
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_patterns((a, b) in (0usize..10, 0usize..10), c in -1.0f64..1.0) {
            prop_assert!(a < 10 && b < 10, "out of range: {} {}", a, b);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(c, 2.0);
        }
    }
}
