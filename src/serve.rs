//! The serve daemon: a fault-tolerant, long-running job service.
//!
//! `parsplu serve` began as a line-delimited job loop on stdin; this
//! module grows it into a daemon (DESIGN.md §5.4) without changing the
//! job grammar:
//!
//! * **Transport** — [`serve_loop`] still drives stdin/stdout for
//!   single-feeder pipelines, while [`serve_daemon`] accepts TCP or Unix
//!   domain socket connections ([`Listener`]) and multiplexes every
//!   client onto the same hash-routed worker lanes. Each connection gets
//!   its own [`CancelToken`]: a dead or slow client is cancelled and
//!   dropped, never wedging a lane.
//! * **Framing** — [`FrameReader`] enforces a line-size cap
//!   (`--max-line-bytes`) and rejects NUL-bearing frames with a one-line
//!   structured error, then resynchronizes at the next newline, so a
//!   garbage client cannot buffer the daemon out of memory or poison the
//!   stream for others.
//! * **Session memory budgeting** — the [`SessionPool`] accounts resident
//!   bytes per session ([`SluSession::resident_bytes`] plus retained
//!   values) and evicts idle sessions in LRU order to honor
//!   `--session-budget`. Evicted sessions leave a tombstone: the next job
//!   naming them gets a structured `session_evicted` error (exit code 7)
//!   and can simply re-`analyze`. Sessions pinned by in-flight jobs are
//!   never evicted.
//! * **Backpressure** — worker lanes are bounded ([`splu_sched::Lane`]);
//!   a full lane refuses the job with a structured `overloaded` response
//!   carrying the queue depth and a retry hint (exit code 8) instead of
//!   buffering without bound.
//! * **Graceful shutdown** — the `shutdown` op (or Ctrl-C) stops intake,
//!   drains every queued job, flushes the final responses, and only then
//!   acknowledges. Accepted work is never dropped.
//! * **Durability** (DESIGN.md §6) — with `--state-dir`, every
//!   acknowledged mutating job (`analyze`/`factor`/`refactor`) is
//!   appended to a CRC-framed journal ([`crate::persist`]) *before* the
//!   ack under `--durability strict`; on startup the journal is replayed
//!   through the same job path, reviving every session bitwise
//!   identically (the pipeline is deterministic, so replaying inputs
//!   reconstructs state exactly). The journal is compacted down to
//!   live-session state once it outgrows its post-compaction baseline.
//! * **Idempotency** — a client may tag any job with `--job-id <token>`;
//!   per-session applied-id tracking plus a bounded response cache means
//!   a retried duplicate returns the original response instead of
//!   re-executing, and journaled ids keep retries safe across a crash.
//!
//! Every response is one JSON line. Errors carry `"kind"` (a stable
//! machine-readable taxonomy: `bad_request`, `numeric`, `worker_panic`,
//! `deadline`, `stalled`, `session_evicted`, `overloaded`,
//! `duplicate_replay`, `journal_corrupt`, `shutting_down`, `cancelled`,
//! `oversize_frame`, `invalid_frame`, `idle_timeout`) next to the CLI
//! exit code a local run would have used.

use crate::cli::{
    compact_json, json_escape, load, matrix_name, parse_flags, read_vector, CliError,
};
use crate::persist::{Damage, Durability, Journal, Record};
use splu_core::{CancelToken, LuError, MatrixMeta, ObsSession, RunReport, RunStatus, SluSession};
use splu_matgen::manufactured_rhs;
use splu_obs::{Counter, MetricsRegistry};
use splu_sched::{Lane, LaneRejected};
use splu_sparse::{relative_residual, CscMatrix};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, ErrorKind, Write as IoWrite};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// FNV-1a offset basis / prime, shared by lane routing and solution
/// hashing.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Configuration for the serve engine, shared by the stdio loop and the
/// socket daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker lanes (and threads) jobs are hash-routed onto.
    pub workers: usize,
    /// Bounded depth of each worker lane; a full lane refuses jobs with a
    /// structured `overloaded` response.
    pub queue_cap: usize,
    /// Maximum accepted job-line length in bytes; longer frames are
    /// discarded (with an `oversize_frame` error) and the stream resyncs
    /// at the next newline.
    pub max_line_bytes: usize,
    /// Resident-byte budget for the session pool; `None` disables
    /// eviction.
    pub session_budget: Option<u64>,
    /// Drop socket connections idle longer than this; `None` disables the
    /// idle timeout. (Ignored by the stdio loop, whose reader blocks.)
    pub idle_timeout: Option<Duration>,
    /// Directory for the durable session journal; `None` runs in-memory
    /// only (state is lost on exit, as before PR 10).
    pub state_dir: Option<PathBuf>,
    /// When the journal acknowledges: `strict` fsyncs before the ack,
    /// `relaxed` batches syncs. Ignored without `state_dir`.
    pub durability: Durability,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            max_line_bytes: 16 * 1024 * 1024,
            session_budget: None,
            idle_timeout: None,
            state_dir: None,
            durability: Durability::Strict,
        }
    }
}

/// Parses a byte-size argument: a plain integer with an optional
/// `k`/`m`/`g` suffix (binary multiples, case-insensitive).
pub fn parse_size(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let (digits, mult) = match t.chars().last() {
        Some('k') | Some('K') => (&t[..t.len() - 1], 1u64 << 10),
        Some('m') | Some('M') => (&t[..t.len() - 1], 1u64 << 20),
        Some('g') | Some('G') => (&t[..t.len() - 1], 1u64 << 30),
        _ => (t, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad size `{s}` (expected e.g. 4096, 64k, 16m, 2g)"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("size `{s}` overflows"))
}

/// The stable machine-readable error kind for a CLI exit code (the
/// `"kind"` field of error responses).
pub fn kind_of_exit(exit_code: i32) -> &'static str {
    match exit_code {
        2 => "bad_request",
        3 => "numeric",
        4 => "worker_panic",
        5 => "deadline",
        6 => "stalled",
        7 => "session_evicted",
        8 => "overloaded",
        9 => "duplicate_replay",
        10 => "journal_corrupt",
        130 => "cancelled",
        _ => "error",
    }
}

/// FNV-1a hash of a session name, used to route jobs onto lanes so that
/// same-session jobs keep submission order.
fn lane_of(name: &str, lanes: usize) -> usize {
    let h = name
        .bytes()
        .fold(FNV_OFFSET, |h, b| (h ^ b as u64).wrapping_mul(FNV_PRIME));
    (h as usize) % lanes
}

/// FNV-1a hash of a solution vector's exact bit patterns. Serve `solve`
/// responses carry it as `x_hash` so clients (and the soak harness) can
/// assert bitwise-identical solves without shipping the vector.
pub fn solution_hash(x: &[f64]) -> u64 {
    let mut h = FNV_OFFSET;
    for v in x {
        for b in v.to_bits().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// One unit read from a job stream.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped, trailing `\r` removed).
    Line(String),
    /// A line longer than the cap was discarded; the stream resynced at
    /// the next newline. `discarded` counts the dropped bytes.
    Oversize {
        /// Bytes thrown away (the whole over-long line).
        discarded: usize,
    },
    /// The line contained a NUL byte — a binary frame on a text protocol.
    Nul {
        /// Length of the rejected line.
        len: usize,
    },
    /// A read timeout expired with no data (sockets only); the caller
    /// should check idle/cancel state and poll again.
    Idle,
    /// End of stream.
    Eof,
}

/// A line framer with a hard size cap. Unlike `BufRead::read_line`, an
/// over-long line never grows the buffer past the cap: the reader switches
/// to skip mode, counts the discarded bytes, and resynchronizes at the
/// next newline. Read timeouts (`WouldBlock`/`TimedOut`) surface as
/// [`Frame::Idle`] so socket connections can poll for shutdown.
pub struct FrameReader<R> {
    inner: R,
    max: usize,
    buf: Vec<u8>,
    /// When `> 0`, we are discarding an over-long line; the value counts
    /// bytes dropped so far.
    skipping: usize,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps `inner`, capping accepted lines at `max` bytes.
    pub fn new(inner: R, max: usize) -> Self {
        FrameReader {
            inner,
            max: max.max(1),
            buf: Vec::new(),
            skipping: 0,
        }
    }

    /// Bytes of an unterminated line currently buffered (or being
    /// discarded in skip mode). Non-zero at an idle timeout means the
    /// client stalled mid-frame; the daemon reports the abandoned partial
    /// frame instead of silently dropping it.
    pub fn buffered(&self) -> usize {
        self.buf.len() + self.skipping
    }

    fn emit_line(&mut self) -> Frame {
        let mut bytes = std::mem::take(&mut self.buf);
        if bytes.last() == Some(&b'\r') {
            bytes.pop();
        }
        if bytes.contains(&0) {
            return Frame::Nul { len: bytes.len() };
        }
        Frame::Line(String::from_utf8_lossy(&bytes).into_owned())
    }

    /// Reads the next frame. Blocks until a full line, EOF, or (for
    /// readers with a read timeout) the timeout.
    pub fn next_frame(&mut self) -> Frame {
        loop {
            let n_avail;
            let newline_at;
            {
                let available = match self.inner.fill_buf() {
                    Ok(b) => b,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                        return Frame::Idle
                    }
                    Err(_) => return Frame::Eof,
                };
                if available.is_empty() {
                    if self.skipping > 0 {
                        let discarded = self.skipping;
                        self.skipping = 0;
                        return Frame::Oversize { discarded };
                    }
                    if self.buf.is_empty() {
                        return Frame::Eof;
                    }
                    // Final line without a trailing newline.
                    return self.emit_line();
                }
                n_avail = available.len();
                newline_at = available.iter().position(|&b| b == b'\n');
                let take = newline_at.unwrap_or(n_avail);
                if self.skipping > 0 {
                    self.skipping += take;
                } else if self.buf.len() + take <= self.max {
                    self.buf.extend_from_slice(&available[..take]);
                } else {
                    self.skipping = self.buf.len() + take;
                    self.buf.clear();
                }
            }
            match newline_at {
                Some(pos) => {
                    self.inner.consume(pos + 1);
                    if self.skipping > 0 {
                        let discarded = self.skipping;
                        self.skipping = 0;
                        return Frame::Oversize { discarded };
                    }
                    return self.emit_line();
                }
                None => self.inner.consume(n_avail),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Session pool
// ---------------------------------------------------------------------------

/// One named session: the persistent analyze/refactor state plus the most
/// recently factored values (retained for manufactured right-hand sides,
/// residual checks, and refined solves).
pub(crate) struct ServeEntry {
    pub(crate) session: SluSession,
    pub(crate) matrix: Option<CscMatrix>,
    /// The exact `analyze` job line that created this session, kept so a
    /// journal compaction can snapshot the session as one replayable
    /// record instead of its whole history.
    pub(crate) analyze_line: Option<String>,
    /// The most recent successful `factor`/`refactor` line, for the same
    /// compaction snapshot.
    pub(crate) numeric_line: Option<String>,
}

/// Resident bytes a retained values matrix costs the pool.
fn csc_bytes(a: &CscMatrix) -> u64 {
    let usz = std::mem::size_of::<usize>() as u64;
    (a.nnz() as u64) * (8 + usz) + (a.ncols() as u64 + 1) * usz
}

fn entry_bytes(e: &ServeEntry) -> u64 {
    e.session.resident_bytes() + e.matrix.as_ref().map_or(0, csc_bytes)
}

enum Slot {
    Live {
        cell: Arc<Mutex<ServeEntry>>,
        bytes: u64,
        last_used: u64,
        pins: u32,
    },
    /// Tombstone left by an eviction so the next job naming the session
    /// gets `session_evicted` (re-analyze) rather than `unknown session`.
    Evicted { bytes: u64 },
}

struct PoolInner {
    slots: HashMap<String, Slot>,
    clock: u64,
    resident: u64,
}

/// Aggregate pool state for the `stats` op and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Live (non-tombstone) sessions.
    pub sessions: usize,
    /// Eviction tombstones awaiting re-analyze.
    pub evicted_tombstones: usize,
    /// Resident bytes across live sessions.
    pub resident_bytes: u64,
}

/// The budgeted, pinning session pool. See the [module docs](self).
pub(crate) struct SessionPool {
    inner: Mutex<PoolInner>,
    budget: Option<u64>,
    metrics: Arc<MetricsRegistry>,
}

impl SessionPool {
    fn new(budget: Option<u64>, metrics: Arc<MetricsRegistry>) -> Self {
        SessionPool {
            inner: Mutex::new(PoolInner {
                slots: HashMap::new(),
                clock: 0,
                resident: 0,
            }),
            budget,
            metrics,
        }
    }

    /// Evicts idle (unpinned) live sessions in LRU order until the pool
    /// fits the budget, then records the resident high-water mark. Returns
    /// the evicted cells so their (possibly large) drops happen outside
    /// the pool lock.
    fn enforce_budget(&self, inner: &mut PoolInner) -> Vec<Arc<Mutex<ServeEntry>>> {
        let mut dropped = Vec::new();
        if let Some(budget) = self.budget {
            while inner.resident > budget {
                let victim = inner
                    .slots
                    .iter()
                    .filter_map(|(name, slot)| match slot {
                        Slot::Live {
                            last_used, pins: 0, ..
                        } => Some((*last_used, name.clone())),
                        _ => None,
                    })
                    .min();
                let Some((_, name)) = victim else {
                    break; // everything left is pinned by an in-flight job
                };
                if let Some(Slot::Live { cell, bytes, .. }) = inner.slots.remove(&name) {
                    inner.slots.insert(name, Slot::Evicted { bytes });
                    inner.resident -= bytes;
                    dropped.push(cell);
                    self.metrics.incr(Counter::SessionsEvicted);
                }
            }
        }
        self.metrics
            .record_max(Counter::ResidentSessionBytesPeak, inner.resident);
        dropped
    }

    /// Installs (or replaces) a session. Fails if the session alone
    /// exceeds the budget; otherwise evicts idle LRU sessions to make it
    /// fit.
    fn insert(&self, name: &str, entry: ServeEntry) -> Result<u64, CliError> {
        let bytes = entry_bytes(&entry);
        if let Some(budget) = self.budget {
            if bytes > budget {
                return Err(CliError::from(format!(
                    "session `{name}` needs {bytes} resident bytes, more than the \
                     --session-budget of {budget}; raise the budget or shrink the problem"
                )));
            }
        }
        let dropped;
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(Slot::Live { bytes: old, .. }) = inner.slots.get(name) {
                inner.resident -= *old;
            }
            inner.clock += 1;
            let stamp = inner.clock;
            inner.slots.insert(
                name.to_string(),
                Slot::Live {
                    cell: Arc::new(Mutex::new(entry)),
                    bytes,
                    last_used: stamp,
                    pins: 0,
                },
            );
            inner.resident += bytes;
            dropped = self.enforce_budget(&mut inner);
        }
        drop(dropped);
        Ok(bytes)
    }

    /// Checks out a session for one job: bumps its LRU stamp and pins it
    /// so concurrent budget enforcement never evicts an in-flight session.
    fn pin(&self, name: &str) -> Result<Pinned<'_>, CliError> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.slots.get_mut(name) {
            None => Err(CliError::from(format!(
                "unknown session `{name}` (run `analyze` first)"
            ))),
            Some(Slot::Evicted { bytes }) => Err(CliError::from(LuError::SessionEvicted {
                resident_bytes: *bytes,
            })),
            Some(Slot::Live {
                cell,
                last_used,
                pins,
                ..
            }) => {
                *last_used = stamp;
                *pins += 1;
                Ok(Pinned {
                    pool: self,
                    name: name.to_string(),
                    cell: Arc::clone(cell),
                    new_bytes: None,
                })
            }
        }
    }

    /// Every live session's cell, name-sorted for a deterministic
    /// compaction snapshot.
    fn live_cells(&self) -> Vec<(String, Arc<Mutex<ServeEntry>>)> {
        let inner = self.inner.lock().unwrap();
        let mut cells: Vec<_> = inner
            .slots
            .iter()
            .filter_map(|(name, slot)| match slot {
                Slot::Live { cell, .. } => Some((name.clone(), Arc::clone(cell))),
                _ => None,
            })
            .collect();
        drop(inner);
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        cells
    }

    /// Aggregate state (for the `stats` op).
    pub(crate) fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().unwrap();
        let mut live = 0usize;
        let mut dead = 0usize;
        for slot in inner.slots.values() {
            match slot {
                Slot::Live { .. } => live += 1,
                Slot::Evicted { .. } => dead += 1,
            }
        }
        PoolStats {
            sessions: live,
            evicted_tombstones: dead,
            resident_bytes: inner.resident,
        }
    }
}

/// A checked-out session. Dropping unpins it, applies any byte-count
/// update recorded by [`Pinned::set_bytes`], and re-enforces the budget
/// (factor jobs grow a session by its panel storage).
pub(crate) struct Pinned<'p> {
    pool: &'p SessionPool,
    name: String,
    cell: Arc<Mutex<ServeEntry>>,
    new_bytes: Option<u64>,
}

impl Pinned<'_> {
    pub(crate) fn cell(&self) -> &Arc<Mutex<ServeEntry>> {
        &self.cell
    }

    /// Records the session's new resident size, applied on drop.
    pub(crate) fn set_bytes(&mut self, bytes: u64) {
        self.new_bytes = Some(bytes);
    }
}

impl Drop for Pinned<'_> {
    fn drop(&mut self) {
        let dropped;
        {
            let mut inner = self.pool.inner.lock().unwrap();
            if let Some(Slot::Live { bytes, pins, .. }) = inner.slots.get_mut(&self.name) {
                *pins = pins.saturating_sub(1);
                if let Some(nb) = self.new_bytes {
                    let old = *bytes;
                    *bytes = nb;
                    inner.resident = inner.resident - old + nb;
                }
            }
            dropped = self.pool.enforce_budget(&mut inner);
        }
        drop(dropped);
    }
}

// ---------------------------------------------------------------------------
// Idempotency tracking
// ---------------------------------------------------------------------------

/// Applied job ids remembered per session before the oldest are forgotten
/// (a forgotten id's retry re-executes — harmless, the pipeline is
/// deterministic and session mutations are idempotent replacements).
const APPLIED_ID_CAP: usize = 4096;

/// Full responses cached per session for duplicate replay; ids past this
/// window stay *applied* but answer retries with `duplicate_replay`
/// (exit 9) instead of the original response.
const RESPONSE_CACHE_CAP: usize = 256;

/// What the tracker knows about a job id.
enum IdStatus {
    /// Never seen: execute normally.
    New,
    /// Applied, original response still cached: return it verbatim.
    Cached(String),
    /// Applied, but the response aged out of the cache (or the ack
    /// predates a crash): the caller gets `duplicate_replay`.
    Evicted,
}

/// Per-session applied-id set plus the bounded response-replay cache.
/// Lives outside the session pool so idempotency survives evictions and
/// re-analyzes. Same-session jobs are lane-serialized, so check→execute→
/// mark needs no cross-job locking beyond the tracker map's mutex.
#[derive(Default)]
struct IdTracker {
    /// Applied ids, oldest first (the eviction order).
    order: VecDeque<String>,
    /// id → cached response (`None` once evicted from the response cache
    /// or restored id-only from the journal).
    entries: HashMap<String, Option<String>>,
    /// Ids currently holding a cached response, oldest first.
    cached: VecDeque<String>,
}

impl IdTracker {
    fn check(&self, id: &str) -> IdStatus {
        match self.entries.get(id) {
            None => IdStatus::New,
            Some(Some(resp)) => IdStatus::Cached(resp.clone()),
            Some(None) => IdStatus::Evicted,
        }
    }

    /// Marks `id` applied, caching `response` when given. Never
    /// downgrades: re-marking a cached id with `None` (a journal
    /// `AppliedIds` record replayed after the job itself) keeps the
    /// cached response.
    fn mark(&mut self, id: &str, response: Option<String>) {
        match self.entries.get_mut(id) {
            Some(slot) => {
                if slot.is_none() && response.is_some() {
                    *slot = response;
                    self.cached.push_back(id.to_string());
                }
            }
            None => {
                let has_response = response.is_some();
                self.order.push_back(id.to_string());
                self.entries.insert(id.to_string(), response);
                if has_response {
                    self.cached.push_back(id.to_string());
                }
                while self.order.len() > APPLIED_ID_CAP {
                    if let Some(old) = self.order.pop_front() {
                        self.entries.remove(&old);
                    }
                }
            }
        }
        while self.cached.len() > RESPONSE_CACHE_CAP {
            if let Some(old) = self.cached.pop_front() {
                if let Some(slot) = self.entries.get_mut(&old) {
                    *slot = None;
                }
            }
        }
    }
}

/// Pulls the optional `--job-id <token>` pair out of a tokenized job
/// line (it is a protocol-level flag, not a `parse_flags` option).
fn extract_job_id(toks: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(i) = toks.iter().position(|t| t == "--job-id") else {
        return Ok(None);
    };
    if i + 1 >= toks.len() {
        return Err("--job-id needs a value".to_string());
    }
    let id = toks.remove(i + 1);
    toks.remove(i);
    Ok(Some(id))
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// A response sink. Returns `false` when the client is gone (so callers
/// can stop writing); replies must never block forever.
pub type Reply<'e> = Arc<dyn Fn(&str) -> bool + Send + Sync + 'e>;

struct Job<'e> {
    id: u64,
    line: String,
    reply: Reply<'e>,
    token: Option<CancelToken>,
}

/// What [`Engine::submit`] did with a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// Blank or comment: skipped, no id consumed.
    Skipped,
    /// Queued onto a worker lane; the response arrives via the reply.
    Queued,
    /// Refused (overload or draining); a structured error was already
    /// written to the reply.
    Rejected,
    /// A control op (`stats`) answered inline.
    Control,
    /// The `quit` op: the feeder should stop reading.
    Quit,
    /// The `shutdown` op: the daemon should drain and exit; the final
    /// acknowledgement is written by [`Engine::flush_shutdown_ack`].
    Shutdown,
}

/// The serve engine: bounded lanes, the session pool, and the daemon
/// counters. One engine serves any number of feeders (the stdio loop, or
/// one feeder per socket connection).
pub struct Engine<'e> {
    cfg: ServeConfig,
    lanes: Vec<Lane<Job<'e>>>,
    pool: SessionPool,
    metrics: Arc<MetricsRegistry>,
    ids: AtomicU64,
    draining: AtomicBool,
    /// EWMA of job service time in nanoseconds (weight 1/8), feeding the
    /// `retry_after_hint` of overload rejections.
    job_ns: AtomicU64,
    pending_ack: Mutex<Option<(Reply<'e>, u64)>>,
    /// The durable session journal (`--state-dir`), absent for
    /// in-memory-only engines.
    journal: Option<Journal>,
    /// Per-session idempotency trackers, keyed by session name. Outlives
    /// pool evictions on purpose.
    trackers: Mutex<HashMap<String, IdTracker>>,
    /// Set while the startup replay runs: jobs skip the duplicate check
    /// (every journaled line must re-execute) and never re-journal.
    replaying: AtomicBool,
    /// splitmix64 sequence feeding the retry-hint jitter.
    jitter_seq: AtomicU64,
    started: Instant,
}

impl<'e> Engine<'e> {
    /// A fresh in-memory engine with its own metrics registry and session
    /// pool. Ignores `cfg.state_dir`; use [`Engine::open`] for a durable
    /// engine.
    pub fn new(cfg: ServeConfig) -> Self {
        let cfg = ServeConfig {
            workers: cfg.workers.max(1),
            queue_cap: cfg.queue_cap.max(1),
            ..cfg
        };
        let metrics = Arc::new(MetricsRegistry::new());
        let lanes = (0..cfg.workers).map(|_| Lane::new(cfg.queue_cap)).collect();
        let pool = SessionPool::new(cfg.session_budget, Arc::clone(&metrics));
        Engine {
            cfg,
            lanes,
            pool,
            metrics,
            ids: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            job_ns: AtomicU64::new(0),
            pending_ack: Mutex::new(None),
            journal: None,
            trackers: Mutex::new(HashMap::new()),
            replaying: AtomicBool::new(false),
            jitter_seq: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// [`Engine::new`] plus durability: opens (or creates) the journal
    /// under `cfg.state_dir` if one is configured, truncates any torn
    /// tail, and replays the surviving records through the normal job
    /// path, reviving every journaled session bitwise-identically.
    pub fn open(cfg: ServeConfig) -> Result<Self, CliError> {
        let state_dir = cfg.state_dir.clone();
        let mut engine = Engine::new(cfg);
        let Some(dir) = state_dir else {
            return Ok(engine);
        };
        let (journal, recovered) = Journal::open(&dir, engine.cfg.durability)
            .map_err(|e| CliError::from(format!("journal: {e}")))?;
        match recovered.damage {
            Some(Damage::TornTail { dropped_bytes }) => eprintln!(
                "parsplu serve: journal had a torn tail ({dropped_bytes} byte(s), a crash \
                 mid-append); truncated to the last whole record"
            ),
            Some(Damage::Corrupt {
                offset,
                dropped_bytes,
            }) => eprintln!(
                "parsplu serve: journal record at byte {offset} failed its CRC; dropped \
                 {dropped_bytes} byte(s) and kept the valid prefix"
            ),
            None => {}
        }
        engine.journal = Some(journal);
        engine.replay(recovered.records);
        Ok(engine)
    }

    /// Re-executes recovered journal records in order. `Job` lines run
    /// through [`serve_job`] exactly like live traffic (minus the
    /// duplicate check and re-journaling); `AppliedIds` records restore
    /// the idempotency trackers id-only.
    fn replay(&self, records: Vec<Record>) {
        if records.is_empty() {
            return;
        }
        self.replaying.store(true, Ordering::Release);
        let mut jobs = 0u64;
        for rec in records {
            match rec {
                Record::Job { line, .. } => {
                    jobs += 1;
                    let id = self.next_id();
                    let response = serve_job(self, id, &line, None);
                    if response.contains(r#""status":"error""#) {
                        // The original run succeeded; a replay failure
                        // means the environment changed (e.g. the matrix
                        // file is gone). Serve what survives.
                        eprintln!("parsplu serve: journal replay of `{line}` failed: {response}");
                    }
                }
                Record::AppliedIds { session, ids } => {
                    let mut trackers = self.trackers.lock().unwrap();
                    let tracker = trackers.entry(session).or_default();
                    for id in ids {
                        tracker.mark(&id, None);
                    }
                }
                Record::Compacted { .. } => {}
            }
        }
        self.replaying.store(false, Ordering::Release);
        let sessions = self.pool.stats().sessions as u64;
        self.metrics.add(Counter::SessionsReplayed, sessions);
        eprintln!("parsplu serve: replayed {jobs} journaled job(s), revived {sessions} session(s)");
    }

    /// The engine's configuration.
    pub fn cfg(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The engine's daemon-level metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn metrics_arc(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Total job ids consumed (job lines answered or queued).
    pub fn jobs_dispatched(&self) -> u64 {
        self.ids.load(Ordering::Relaxed)
    }

    fn next_id(&self) -> u64 {
        self.ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// True once a shutdown (op or external cancel) began: intake is
    /// refused, queued work drains.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Starts draining without a `shutdown` op (Ctrl-C path).
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Closes every lane: queued jobs still drain, new pushes are refused.
    pub fn close_lanes(&self) {
        for lane in &self.lanes {
            lane.close();
        }
    }

    /// Spawns one worker thread per lane on `scope`.
    pub fn start_workers<'env, 'scope>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
    ) -> Vec<std::thread::ScopedJoinHandle<'scope, ()>> {
        (0..self.lanes.len())
            .map(|w| scope.spawn(move || self.worker_loop(w)))
            .collect()
    }

    fn worker_loop(&self, w: usize) {
        while let Some(job) = self.lanes[w].pop() {
            let t0 = Instant::now();
            let response = serve_job(self, job.id, &job.line, job.token.as_ref());
            let ns = t0.elapsed().as_nanos() as u64;
            let old = self.job_ns.load(Ordering::Relaxed);
            let new = if old == 0 { ns } else { old - old / 8 + ns / 8 };
            self.job_ns.store(new, Ordering::Relaxed);
            let _ = (job.reply)(&response);
        }
    }

    /// A uniform sample in `[0, 1)` from a splitmix64 sequence — cheap,
    /// lock-free, and deterministic per engine (no wall-clock seeding).
    fn jitter_unit(&self) -> f64 {
        let s = self
            .jitter_seq
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn retry_after_hint(&self, depth: usize) -> f64 {
        let ewma_s = self.job_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let base = ((depth as f64 + 1.0) * ewma_s).max(0.05);
        // ±25% bounded jitter so a herd of clients rejected together
        // (after a drain or restart) does not retry in lockstep and
        // re-overload the same lane in phase.
        base * (0.75 + 0.5 * self.jitter_unit())
    }

    /// Looks up `job_id`'s status for `name`'s session.
    fn check_applied(&self, name: &str, job_id: &str) -> IdStatus {
        let trackers = self.trackers.lock().unwrap();
        match trackers.get(name) {
            Some(t) => t.check(job_id),
            None => IdStatus::New,
        }
    }

    /// Marks `job_id` applied for `name`, caching the response.
    fn mark_applied(&self, name: &str, job_id: &str, response: Option<String>) {
        let mut trackers = self.trackers.lock().unwrap();
        trackers
            .entry(name.to_string())
            .or_default()
            .mark(job_id, response);
    }

    /// Compacts the journal once it has outgrown its post-compaction
    /// baseline: the whole job history is replaced by one snapshot per
    /// live session (last analyze line + last numeric line) plus the
    /// applied-id sets. Called after appends; a no-op without a journal
    /// or below the growth threshold, and aborted (retried after later
    /// appends) while any session is mid-job.
    fn maybe_compact(&self) {
        /// Never compact below this size — churning a tiny journal buys
        /// nothing.
        const COMPACT_MIN_BYTES: u64 = 256 * 1024;
        let Some(journal) = &self.journal else {
            return;
        };
        if journal.bytes() < (journal.compact_baseline() * 4).max(COMPACT_MIN_BYTES) {
            return;
        }
        match journal.compact_with(|| self.gather_snapshot()) {
            Ok(true) => self.metrics.incr(Counter::JournalCompactions),
            Ok(false) => {}
            Err(e) => eprintln!("parsplu serve: journal compaction failed: {e}"),
        }
    }

    /// The compaction snapshot: equivalent-under-replay records for the
    /// current state. Runs under the journal writer lock (so concurrent
    /// mutating jobs append to the *new* file, never into the discarded
    /// one); returns `None` — aborting the compaction — if any session is
    /// locked by an in-flight job, rather than stalling the append path.
    fn gather_snapshot(&self) -> Option<Vec<Record>> {
        let cells = self.pool.live_cells();
        let mut records = Vec::new();
        for (_, cell) in &cells {
            let entry = cell.try_lock().ok()?;
            for line in [&entry.analyze_line, &entry.numeric_line]
                .into_iter()
                .flatten()
            {
                let mut toks: Vec<String> = line.split_whitespace().map(String::from).collect();
                let job_id = extract_job_id(&mut toks).ok().flatten();
                records.push(Record::Job {
                    job_id,
                    line: line.clone(),
                });
            }
        }
        let trackers = self.trackers.lock().unwrap();
        let mut names: Vec<&String> = trackers.keys().collect();
        names.sort();
        for name in names {
            let ids: Vec<String> = trackers[name].order.iter().cloned().collect();
            if !ids.is_empty() {
                records.push(Record::AppliedIds {
                    session: name.clone(),
                    ids,
                });
            }
        }
        records.push(Record::Compacted {
            live_sessions: cells.len() as u64,
        });
        Some(records)
    }

    /// Routes one line: skips blanks/comments, answers control ops,
    /// refuses overload/draining with structured errors, queues real jobs
    /// onto their session's lane.
    pub fn submit(&self, raw: &str, reply: &Reply<'e>, token: Option<&CancelToken>) -> Submitted {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            return Submitted::Skipped;
        }
        if line == "quit" {
            return Submitted::Quit;
        }
        let id = self.next_id();
        let mut tk = line.split_whitespace();
        let op = tk.next().unwrap_or("");
        let name = tk.next().unwrap_or("");
        if op == "stats" {
            let _ = reply(&self.stats_response(id));
            return Submitted::Control;
        }
        if self.is_draining() {
            let _ = reply(&refusal_response(id, op, name));
            return Submitted::Rejected;
        }
        if op == "shutdown" {
            *self.pending_ack.lock().unwrap() = Some((Arc::clone(reply), id));
            self.begin_drain();
            return Submitted::Shutdown;
        }
        let lane = lane_of(name, self.lanes.len());
        // Each job gets a *child* of the caller's token: cancelling the
        // connection still aborts its in-flight jobs, but a contained job
        // failure — the executors' abort-drain path cancels the run token
        // to release parked workers — must not stick a cancellation onto
        // the connection and kill every later job on it.
        let job = Job {
            id,
            line: line.to_string(),
            reply: Arc::clone(reply),
            token: token.map(CancelToken::child),
        };
        match self.lanes[lane].try_push(job) {
            Ok(depth) => {
                self.metrics
                    .record_max(Counter::QueueDepthPeak, depth as u64);
                Submitted::Queued
            }
            Err(LaneRejected::Full { item, depth }) => {
                self.metrics.incr(Counter::JobsRejectedOverload);
                let hint = self.retry_after_hint(depth);
                let _ = (item.reply)(&format!(
                    r#"{{"id":{},"op":"{}","session":"{}","status":"error","kind":"overloaded","exit_code":8,"queue_depth":{depth},"retry_after_hint":{hint:.3},"error":"lane queue is full ({depth} job(s) ahead); retry after the hint"}}"#,
                    item.id,
                    json_escape(op),
                    json_escape(name),
                ));
                Submitted::Rejected
            }
            Err(LaneRejected::Closed { item }) => {
                let _ = (item.reply)(&refusal_response(item.id, op, name));
                Submitted::Rejected
            }
        }
    }

    /// A one-line error for a framing fault, consuming a job id so the
    /// client still sees exactly one response per frame.
    pub fn frame_response(&self, fault: FrameFault) -> String {
        let id = self.next_id();
        match fault {
            FrameFault::Oversize { discarded } => format!(
                r#"{{"id":{id},"op":"frame","session":"","status":"error","kind":"oversize_frame","exit_code":2,"bytes":{discarded},"error":"line of {discarded} bytes exceeds --max-line-bytes ({}); frame discarded, stream resynced"}}"#,
                self.cfg.max_line_bytes
            ),
            FrameFault::Nul { len } => format!(
                r#"{{"id":{id},"op":"frame","session":"","status":"error","kind":"invalid_frame","exit_code":2,"bytes":{len},"error":"NUL byte in a {len}-byte job line; binary frames are not accepted"}}"#
            ),
            FrameFault::Partial { len } => format!(
                r#"{{"id":{id},"op":"frame","session":"","status":"error","kind":"invalid_frame","exit_code":2,"bytes":{len},"error":"connection idled out with a {len}-byte partial frame buffered (no trailing newline); the fragment was discarded"}}"#
            ),
        }
    }

    /// The response to an `idle_timeout` disconnect, written before the
    /// daemon drops the connection.
    fn idle_response(&self, limit: Duration) -> String {
        let id = self.next_id();
        format!(
            r#"{{"id":{id},"op":"idle","session":"","status":"error","kind":"idle_timeout","exit_code":2,"error":"connection idle for more than {:.1}s; closing"}}"#,
            limit.as_secs_f64()
        )
    }

    fn stats_response(&self, id: u64) -> String {
        let pool = self.pool.stats();
        let depths: Vec<String> = self.lanes.iter().map(|l| l.depth().to_string()).collect();
        let budget = match self.cfg.session_budget {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        let durability = match &self.journal {
            Some(j) => format!(r#""{}""#, j.durability().name()),
            None => "null".to_string(),
        };
        format!(
            r#"{{"id":{id},"op":"stats","session":"","status":"ok","workers":{},"queue_cap":{},"queue_depths":[{}],"queue_depth_peak":{},"sessions":{},"evicted_tombstones":{},"resident_bytes":{},"resident_bytes_peak":{},"session_budget":{budget},"draining":{},"jobs_dispatched":{},"sessions_evicted":{},"jobs_rejected_overload":{},"connections_dropped":{},"uptime_s":{:.3},"durability":{durability},"journal_bytes":{},"journal_appends":{},"journal_compactions":{},"sessions_replayed":{},"jobs_deduped_replay":{}}}"#,
            self.cfg.workers,
            self.cfg.queue_cap,
            depths.join(","),
            self.metrics.get(Counter::QueueDepthPeak),
            pool.sessions,
            pool.evicted_tombstones,
            pool.resident_bytes,
            self.metrics.get(Counter::ResidentSessionBytesPeak),
            self.is_draining(),
            self.jobs_dispatched(),
            self.metrics.get(Counter::SessionsEvicted),
            self.metrics.get(Counter::JobsRejectedOverload),
            self.metrics.get(Counter::ConnectionsDropped),
            self.started.elapsed().as_secs_f64(),
            self.journal.as_ref().map_or(0, |j| j.bytes()),
            self.metrics.get(Counter::JournalAppends),
            self.metrics.get(Counter::JournalCompactions),
            self.metrics.get(Counter::SessionsReplayed),
            self.metrics.get(Counter::JobsDedupedReplay),
        )
    }

    /// Forces any batched (relaxed-durability) journal writes to disk —
    /// the drain path, so a graceful shutdown never loses acknowledged
    /// work even in relaxed mode.
    pub fn sync_journal(&self) {
        if let Some(j) = &self.journal {
            if let Err(e) = j.sync() {
                eprintln!("parsplu serve: journal sync on drain failed: {e}");
            }
        }
    }

    /// Writes the deferred `shutdown` acknowledgement (after the lanes are
    /// drained and every in-flight response is flushed).
    pub fn flush_shutdown_ack(&self) {
        if let Some((reply, id)) = self.pending_ack.lock().unwrap().take() {
            let _ = reply(&format!(
                r#"{{"id":{id},"op":"shutdown","session":"","status":"ok","drained":true,"jobs":{}}}"#,
                self.jobs_dispatched()
            ));
        }
    }

    /// Overwrites the daemon counters in an embedded run report with the
    /// engine's live values (the per-job report was built from a per-job
    /// registry where they are always zero).
    fn fold_daemon_counters(&self, report: &mut RunReport) {
        const DAEMON: [Counter; 9] = [
            Counter::SessionsEvicted,
            Counter::JobsRejectedOverload,
            Counter::ConnectionsDropped,
            Counter::QueueDepthPeak,
            Counter::ResidentSessionBytesPeak,
            Counter::SessionsReplayed,
            Counter::JobsDedupedReplay,
            Counter::JournalAppends,
            Counter::JournalCompactions,
        ];
        for c in DAEMON {
            let v = self.metrics.get(c);
            if let Some(slot) = report.counters.iter_mut().find(|(n, _)| n == c.name()) {
                slot.1 = v;
            } else {
                report.counters.push((c.name().to_string(), v));
            }
        }
    }
}

/// A fault found by the framer, converted to a one-line error by
/// [`Engine::frame_response`].
#[derive(Debug, Clone, Copy)]
pub enum FrameFault {
    /// The line exceeded `--max-line-bytes`.
    Oversize {
        /// Bytes discarded.
        discarded: usize,
    },
    /// The line contained a NUL byte.
    Nul {
        /// Length of the rejected line.
        len: usize,
    },
    /// The connection idled out with an unterminated line still buffered;
    /// the fragment is reported (then discarded) instead of vanishing.
    Partial {
        /// Buffered bytes of the abandoned frame.
        len: usize,
    },
}

fn refusal_response(id: u64, op: &str, name: &str) -> String {
    format!(
        r#"{{"id":{id},"op":"{}","session":"{}","status":"error","kind":"shutting_down","exit_code":8,"error":"the daemon is draining and accepts no new jobs"}}"#,
        json_escape(op),
        json_escape(name),
    )
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

/// Runs one serve-mode job line, returning the one-line JSON response.
///
/// This is also the idempotency and durability boundary. The optional
/// `--job-id <token>` is stripped here (it is protocol, not job
/// grammar): a duplicate of an applied id returns the cached original
/// response (or `duplicate_replay`, exit 9, once the response has aged
/// out). A successful mutating job is journaled *before* the response is
/// returned — if the append fails, the response becomes
/// `journal_corrupt` (exit 10) and the id is *not* marked applied, so
/// the client's retry re-executes (deterministically, to the same state)
/// rather than trusting an ack the disk never saw.
fn serve_job(engine: &Engine<'_>, id: u64, line: &str, token: Option<&CancelToken>) -> String {
    let mut toks: Vec<String> = line.split_whitespace().map(String::from).collect();
    let job_id = match extract_job_id(&mut toks) {
        Ok(j) => j,
        Err(msg) => {
            return format!(
                r#"{{"id":{id},"op":"","session":"","status":"error","kind":"bad_request","exit_code":2,"error":"{}"}}"#,
                json_escape(&msg)
            )
        }
    };
    let op = toks.first().cloned().unwrap_or_default();
    let name = toks.get(1).cloned().unwrap_or_default();
    let head = format!(
        r#"{{"id":{id},"op":"{}","session":"{}""#,
        json_escape(&op),
        json_escape(&name)
    );
    let replaying = engine.replaying.load(Ordering::Acquire);
    if let Some(jid) = &job_id {
        if !replaying {
            match engine.check_applied(&name, jid) {
                IdStatus::New => {}
                IdStatus::Cached(original) => {
                    engine.metrics.incr(Counter::JobsDedupedReplay);
                    return original;
                }
                IdStatus::Evicted => {
                    return format!(
                        r#"{head},"status":"error","kind":"duplicate_replay","exit_code":9,"job_id":"{}","error":"job id already applied but its response is no longer cached; the work was done — query the session instead of retrying"}}"#,
                        json_escape(jid)
                    );
                }
            }
        }
    }
    let t0 = Instant::now();
    match serve_job_inner(engine, &toks, line, token) {
        Ok(fields) => {
            let response = format!(
                r#"{head},"status":"ok","seconds":{:.6}{fields}}}"#,
                t0.elapsed().as_secs_f64()
            );
            let mutating = matches!(op.as_str(), "analyze" | "factor" | "refactor");
            if mutating && !replaying {
                if let Some(journal) = &engine.journal {
                    let record = Record::Job {
                        job_id: job_id.clone(),
                        line: line.to_string(),
                    };
                    if let Err(e) = journal.append(&record) {
                        // In-memory state mutated but durability failed:
                        // the ack must not claim what the disk refused.
                        // The id stays unapplied so a retry re-executes
                        // (idempotently) once the disk recovers.
                        return format!(
                            r#"{head},"status":"error","kind":"journal_corrupt","exit_code":10,"error":"job applied in memory but the journal append failed ({}); durability is not guaranteed — retry once the state-dir is writable"}}"#,
                            json_escape(&e.to_string())
                        );
                    }
                    engine.metrics.incr(Counter::JournalAppends);
                    engine.maybe_compact();
                }
            }
            if let Some(jid) = &job_id {
                engine.mark_applied(&name, jid, Some(response.clone()));
            }
            response
        }
        Err(e) => format!(
            r#"{head},"status":"error","kind":"{}","exit_code":{},"error":"{}"}}"#,
            kind_of_exit(e.exit_code),
            e.exit_code,
            json_escape(&e.message)
        ),
    }
}

/// The fallible body of [`serve_job`]: returns extra JSON fields (each
/// prefixed with a comma) to splice into the success response.
fn serve_job_inner(
    engine: &Engine<'_>,
    toks: &[String],
    line: &str,
    token: Option<&CancelToken>,
) -> Result<String, CliError> {
    let op = toks
        .first()
        .ok_or_else(|| CliError::from("a job line needs an op"))?
        .as_str();
    let name = toks
        .get(1)
        .ok_or_else(|| CliError::from(format!("`{op}` needs a session name")))?;
    match op {
        "analyze" => {
            let path = toks
                .get(2)
                .ok_or_else(|| CliError::from("`analyze` needs a matrix path"))?;
            let cli = parse_flags(&toks[3..], token)?;
            let obs = ObsSession::new();
            let a = {
                let _p = obs.phase("parse");
                load(path)?
            };
            let meta = MatrixMeta {
                name: matrix_name(path),
                n: a.ncols(),
                nnz: a.nnz(),
            };
            let session =
                SluSession::analyze_observed(a.pattern(), &cli.opts, &obs).map_err(|e| {
                    let _ = obs.report(meta.clone(), &cli.opts, RunStatus::from_error(&e));
                    CliError::from(e)
                })?;
            let mut report = obs.report(
                MatrixMeta::from_stats(&matrix_name(path), session.stats()),
                &cli.opts,
                RunStatus::success(),
            );
            let stats = format!(
                r#","tasks":{},"supernodes":{}"#,
                session.stats().graph_tasks,
                session.stats().supernodes
            );
            let bytes = engine.pool.insert(
                name,
                ServeEntry {
                    session,
                    matrix: None,
                    analyze_line: Some(line.to_string()),
                    numeric_line: None,
                },
            )?;
            engine.fold_daemon_counters(&mut report);
            Ok(format!(
                r#"{stats},"resident_bytes":{bytes},"report":{}"#,
                compact_json(&report.to_json())
            ))
        }
        "factor" | "refactor" => {
            let path = toks
                .get(2)
                .ok_or_else(|| CliError::from(format!("`{op}` needs a values path")))?;
            let cli = parse_flags(&toks[3..], token)?;
            let mut pin = engine.pool.pin(name)?;
            let cell = Arc::clone(pin.cell());
            let mut e = cell.lock().unwrap();
            let obs = ObsSession::new();
            let a = {
                let _p = obs.phase("parse");
                load(path)?
            };
            e.session.set_budget(cli.opts.budget.clone());
            let outcome = if op == "refactor" {
                e.session.refactor_observed(&a, &obs)
            } else {
                e.session.factor_observed(&a, &obs)
            };
            let meta = MatrixMeta::from_stats(&matrix_name(path), e.session.stats());
            let opts = e.session.options().clone();
            let result = match outcome {
                Ok(()) => {
                    e.matrix = Some(a);
                    e.numeric_line = Some(line.to_string());
                    let mut report = obs.report(meta, &opts, RunStatus::success());
                    engine.fold_daemon_counters(&mut report);
                    Ok((entry_bytes(&e), compact_json(&report.to_json())))
                }
                Err(err) => {
                    // The session survives a failed or interrupted
                    // factorization; the report records the error.
                    let _ = obs.report(meta, &opts, RunStatus::from_error(&err));
                    pin.set_bytes(entry_bytes(&e));
                    Err(err)
                }
            };
            drop(e);
            let (bytes, report) = result.map_err(CliError::from)?;
            pin.set_bytes(bytes);
            Ok(format!(r#","resident_bytes":{bytes},"report":{report}"#))
        }
        "solve" => {
            let cli = parse_flags(&toks[2..], token)?;
            let pin = engine.pool.pin(name)?;
            let cell = Arc::clone(pin.cell());
            let e = cell.lock().unwrap();
            let a = e.matrix.as_ref().ok_or_else(|| {
                CliError::from(format!("session `{name}` holds no factored values"))
            })?;
            let b = match &cli.rhs {
                Some(p) => read_vector(p, a.nrows())?,
                None => manufactured_rhs(a, 1).1,
            };
            let x = if cli.transpose {
                e.session.try_solve_transposed(&b)?
            } else if cli.refine {
                e.session.solve_refined(a, &b, 1e-14, 2)?.0
            } else {
                e.session.try_solve(&b)?
            };
            let resid = if cli.transpose {
                relative_residual(&a.transpose(), &x, &b)
            } else {
                relative_residual(a, &x, &b)
            };
            Ok(format!(
                r#","residual":{resid:.3e},"x_hash":"{:#018x}""#,
                solution_hash(&x)
            ))
        }
        other => Err(CliError::from(format!("unknown serve op `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Stdio loop
// ---------------------------------------------------------------------------

/// The serve-mode engine on a single reader/writer pair, factored out so
/// the integration tests can drive it in-process: reads line-delimited
/// jobs from `reader`, dispatches them over `workers` threads, and writes
/// one JSON line per job to `writer` in completion order. Returns the
/// number of jobs run.
pub fn serve_loop<R: BufRead, W: IoWrite + Send>(
    reader: R,
    writer: &Mutex<W>,
    workers: usize,
    token: Option<&CancelToken>,
) -> Result<usize, CliError> {
    let cfg = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    serve_loop_with(cfg, reader, writer, token)
}

/// [`serve_loop`] with a full [`ServeConfig`] (lane bounds, line cap,
/// session budget).
pub fn serve_loop_with<R: BufRead, W: IoWrite + Send>(
    cfg: ServeConfig,
    reader: R,
    writer: &Mutex<W>,
    token: Option<&CancelToken>,
) -> Result<usize, CliError> {
    let engine = Engine::open(cfg)?;
    let mut frames = FrameReader::new(reader, engine.cfg().max_line_bytes);
    std::thread::scope(|scope| {
        let workers = engine.start_workers(scope);
        let reply: Reply<'_> = Arc::new(move |s: &str| {
            let mut w = writer.lock().unwrap();
            writeln!(w, "{s}").is_ok() && w.flush().is_ok()
        });
        loop {
            if token.is_some_and(|t| t.is_cancelled()) {
                break;
            }
            match frames.next_frame() {
                Frame::Eof | Frame::Idle => break,
                Frame::Oversize { discarded } => {
                    let _ = reply(&engine.frame_response(FrameFault::Oversize { discarded }));
                }
                Frame::Nul { len } => {
                    let _ = reply(&engine.frame_response(FrameFault::Nul { len }));
                }
                Frame::Line(line) => match engine.submit(&line, &reply, token) {
                    Submitted::Quit | Submitted::Shutdown => break,
                    _ => {}
                },
            }
        }
        engine.close_lanes();
        for h in workers {
            let _ = h.join();
        }
        engine.sync_journal();
        engine.flush_shutdown_ack();
    });
    Ok(engine.jobs_dispatched() as usize)
}

// ---------------------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------------------

/// A bound daemon listener: TCP (`host:port`) or a Unix domain socket
/// (`unix:/path/to.sock`, Unix targets only).
pub enum Listener {
    /// A TCP listener.
    Tcp(std::net::TcpListener),
    /// A Unix domain socket listener; the path is unlinked on drop.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, std::path::PathBuf),
}

/// One accepted client connection.
pub(crate) enum Conn {
    Tcp(std::net::TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Listener {
    /// Binds `addr`: `unix:<path>` for a Unix domain socket, anything
    /// else as a TCP address (`127.0.0.1:0` picks an ephemeral port).
    pub fn bind(addr: &str) -> Result<Listener, CliError> {
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                use std::os::unix::fs::FileTypeExt;
                // Unlink a stale socket from a previous run, but only a
                // socket — never a regular file at the same path.
                if let Ok(meta) = std::fs::symlink_metadata(path) {
                    if meta.file_type().is_socket() {
                        let _ = std::fs::remove_file(path);
                    }
                }
                let l = std::os::unix::net::UnixListener::bind(path)
                    .map_err(|e| CliError::from(format!("binding {addr}: {e}")))?;
                Ok(Listener::Unix(l, std::path::PathBuf::from(path)))
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err(CliError::from(
                    "unix-socket listeners are not supported on this platform",
                ))
            }
        } else {
            let l = std::net::TcpListener::bind(addr)
                .map_err(|e| CliError::from(format!("binding {addr}: {e}")))?;
            Ok(Listener::Tcp(l))
        }
    }

    /// The bound address, printable for clients (TCP reports the actual
    /// ephemeral port).
    pub fn local_addr_string(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".to_string()),
            #[cfg(unix)]
            Listener::Unix(_, p) => format!("unix:{}", p.display()),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    fn accept_conn(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // One-line responses to interactive clients: Nagle's
                // algorithm only adds delayed-ACK stalls here.
                let _ = s.set_nodelay(true);
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// What a finished daemon served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Job lines answered (accepted or structurally refused).
    pub jobs: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
}

struct ConnSink {
    stream: Mutex<Conn>,
    dead: AtomicBool,
    /// Responses promised to this client but not yet attempted. The
    /// feeder increments before each reply-producing event; the reply
    /// closure decrements on every attempt. EOF with `owed > 0` means
    /// the client vanished before its answers — a genuine drop. EOF at
    /// zero is a normal close.
    owed: AtomicI64,
}

/// How often blocked socket reads and the accept loop wake to poll
/// drain/cancel state.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Runs the daemon on a bound listener until a `shutdown` op arrives or
/// `token` is cancelled, then drains queued jobs, flushes their
/// responses, and returns. Every connection is an independent feeder onto
/// one shared engine: sessions, lanes, and the budget are daemon-global.
pub fn serve_daemon(
    cfg: ServeConfig,
    listener: Listener,
    token: Option<&CancelToken>,
) -> Result<ServeSummary, CliError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::from(format!("listener setup: {e}")))?;
    let engine = Engine::open(cfg)?;
    let connections = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let workers = engine.start_workers(scope);
        loop {
            if engine.is_draining() {
                break;
            }
            if token.is_some_and(|t| t.is_cancelled()) {
                engine.begin_drain();
                break;
            }
            match listener.accept_conn() {
                Ok(conn) => {
                    connections.fetch_add(1, Ordering::Relaxed);
                    let engine = &engine;
                    scope.spawn(move || serve_connection(engine, conn));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL_TICK),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    engine.begin_drain();
                    break;
                }
            }
        }
        // Stop intake, run the queues dry, flush the deferred shutdown
        // acknowledgement. Reader threads notice `is_draining` within one
        // poll tick and exit; the scope joins them.
        engine.close_lanes();
        for h in workers {
            let _ = h.join();
        }
        engine.sync_journal();
        engine.flush_shutdown_ack();
    });
    Ok(ServeSummary {
        jobs: engine.jobs_dispatched(),
        connections: connections.load(Ordering::Relaxed),
    })
}

/// One connection's feeder: frames lines off the socket, submits them to
/// the shared engine, and owns the connection's cancel token. An unclean
/// end (EOF mid-stream, write failure, idle timeout) cancels the token so
/// in-flight jobs for this client abort at their next budget checkpoint
/// instead of wedging a lane. `connections_dropped` counts only clients
/// that vanished with responses still owed; a plain EOF after reading
/// everything is a normal close.
fn serve_connection(engine: &Engine<'_>, conn: Conn) {
    let read_half = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => {
            engine.metrics().incr(Counter::ConnectionsDropped);
            return;
        }
    };
    let _ = read_half.set_read_timeout(Some(POLL_TICK));
    let sink = Arc::new(ConnSink {
        stream: Mutex::new(conn),
        dead: AtomicBool::new(false),
        owed: AtomicI64::new(0),
    });
    let conn_token = CancelToken::new();
    let reply: Reply<'_> = {
        let sink = Arc::clone(&sink);
        let token = conn_token.clone();
        let metrics = engine.metrics_arc();
        Arc::new(move |s: &str| {
            sink.owed.fetch_sub(1, Ordering::AcqRel);
            if sink.dead.load(Ordering::Acquire) {
                return false;
            }
            let mut w = sink.stream.lock().unwrap();
            let ok = writeln!(w, "{s}").is_ok() && w.flush().is_ok();
            if !ok && !sink.dead.swap(true, Ordering::AcqRel) {
                metrics.incr(Counter::ConnectionsDropped);
                token.cancel();
            }
            ok
        })
    };
    let mut frames = FrameReader::new(
        std::io::BufReader::new(read_half),
        engine.cfg().max_line_bytes,
    );
    let mut last_activity = Instant::now();
    let mut clean = false;
    loop {
        if engine.is_draining() {
            clean = true;
            break;
        }
        if conn_token.is_cancelled() {
            break;
        }
        match frames.next_frame() {
            Frame::Idle => {
                if let Some(limit) = engine.cfg().idle_timeout {
                    if last_activity.elapsed() >= limit {
                        // A half-sent line deserves a structured answer,
                        // not a silent drop: report the abandoned
                        // fragment before the idle notice closes the
                        // connection.
                        let pending = frames.buffered();
                        if pending > 0 {
                            sink.owed.fetch_add(1, Ordering::AcqRel);
                            let _ =
                                reply(&engine.frame_response(FrameFault::Partial { len: pending }));
                        }
                        sink.owed.fetch_add(1, Ordering::AcqRel);
                        let _ = reply(&engine.idle_response(limit));
                        break;
                    }
                }
            }
            Frame::Eof => break,
            Frame::Oversize { discarded } => {
                last_activity = Instant::now();
                sink.owed.fetch_add(1, Ordering::AcqRel);
                let _ = reply(&engine.frame_response(FrameFault::Oversize { discarded }));
            }
            Frame::Nul { len } => {
                last_activity = Instant::now();
                sink.owed.fetch_add(1, Ordering::AcqRel);
                let _ = reply(&engine.frame_response(FrameFault::Nul { len }));
            }
            Frame::Line(line) => {
                last_activity = Instant::now();
                // Promise one response up front: inline answers (stats,
                // rejections) repay it inside `submit`, queued jobs repay
                // it when a worker replies, and the deferred shutdown ack
                // repays it from `flush_shutdown_ack`.
                sink.owed.fetch_add(1, Ordering::AcqRel);
                match engine.submit(&line, &reply, Some(&conn_token)) {
                    Submitted::Skipped => {
                        sink.owed.fetch_sub(1, Ordering::AcqRel);
                    }
                    Submitted::Quit => {
                        sink.owed.fetch_sub(1, Ordering::AcqRel);
                        clean = true;
                        break;
                    }
                    Submitted::Shutdown => {
                        clean = true;
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    // The write half lives on inside any queued jobs' reply Arcs, so
    // responses already accepted still flush before the socket closes.
    // An unclean end always cancels the token (in-flight jobs abort at
    // their next checkpoint instead of wedging a lane), but only counts
    // as a dropped connection when the client still had responses owed;
    // an EOF with nothing outstanding is just a client closing up.
    if !clean {
        conn_token.cancel();
        if sink.owed.load(Ordering::Acquire) > 0 && !sink.dead.swap(true, Ordering::AcqRel) {
            engine.metrics().incr(Counter::ConnectionsDropped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that hands out its data in tiny chunks, exercising frame
    /// reassembly across `fill_buf` boundaries.
    struct Chunked {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        staged: Vec<u8>,
    }

    impl Chunked {
        fn new(data: &[u8], chunk: usize) -> Self {
            Chunked {
                data: data.to_vec(),
                pos: 0,
                chunk,
                staged: Vec::new(),
            }
        }
    }

    impl std::io::Read for Chunked {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            unreachable!("FrameReader uses fill_buf/consume")
        }
    }

    impl BufRead for Chunked {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.staged.is_empty() {
                let end = (self.pos + self.chunk).min(self.data.len());
                self.staged = self.data[self.pos..end].to_vec();
                self.pos = end;
            }
            Ok(&self.staged)
        }

        fn consume(&mut self, amt: usize) {
            self.staged.drain(..amt);
        }
    }

    #[test]
    fn frames_lines_across_chunk_boundaries() {
        for chunk in [1, 2, 3, 7, 64] {
            let mut fr = FrameReader::new(Chunked::new(b"alpha beta\ngamma\r\ndelta", chunk), 64);
            assert_eq!(fr.next_frame(), Frame::Line("alpha beta".into()));
            assert_eq!(fr.next_frame(), Frame::Line("gamma".into()));
            assert_eq!(fr.next_frame(), Frame::Line("delta".into()));
            assert_eq!(fr.next_frame(), Frame::Eof);
            assert_eq!(fr.next_frame(), Frame::Eof);
        }
    }

    #[test]
    fn oversize_line_is_discarded_and_stream_resyncs() {
        let long = "x".repeat(100);
        let data = format!("ok one\n{long}\nok two\n");
        for chunk in [3, 16, 1024] {
            let mut fr = FrameReader::new(Chunked::new(data.as_bytes(), chunk), 32);
            assert_eq!(fr.next_frame(), Frame::Line("ok one".into()));
            assert_eq!(fr.next_frame(), Frame::Oversize { discarded: 100 });
            assert_eq!(fr.next_frame(), Frame::Line("ok two".into()));
            assert_eq!(fr.next_frame(), Frame::Eof);
        }
        // The buffer never grows past the cap even when the line never
        // ends (oversize reported at EOF).
        let mut fr = FrameReader::new(Cursor::new("y".repeat(1000)), 32);
        assert_eq!(fr.next_frame(), Frame::Oversize { discarded: 1000 });
        assert!(fr.buf.is_empty());
        assert!(fr.buf.capacity() <= 64);
    }

    #[test]
    fn nul_bytes_make_an_invalid_frame() {
        let mut fr = FrameReader::new(Cursor::new(b"good\nbad\0job\nalso good\n".to_vec()), 64);
        assert_eq!(fr.next_frame(), Frame::Line("good".into()));
        assert_eq!(fr.next_frame(), Frame::Nul { len: 7 });
        assert_eq!(fr.next_frame(), Frame::Line("also good".into()));
        assert_eq!(fr.next_frame(), Frame::Eof);
    }

    #[test]
    fn exactly_max_bytes_is_accepted() {
        let line = "z".repeat(32);
        let mut fr = FrameReader::new(Cursor::new(format!("{line}\n")), 32);
        assert_eq!(fr.next_frame(), Frame::Line(line));
        let over = "z".repeat(33);
        let mut fr = FrameReader::new(Cursor::new(format!("{over}\n")), 32);
        assert_eq!(fr.next_frame(), Frame::Oversize { discarded: 33 });
    }

    #[test]
    fn parse_size_suffixes() {
        assert_eq!(parse_size("4096").unwrap(), 4096);
        assert_eq!(parse_size("64k").unwrap(), 64 << 10);
        assert_eq!(parse_size("16M").unwrap(), 16 << 20);
        assert_eq!(parse_size("2g").unwrap(), 2 << 30);
        assert!(parse_size("banana").is_err());
        assert!(parse_size("999999999999g").is_err());
    }

    #[test]
    fn exit_code_kinds_are_stable() {
        assert_eq!(kind_of_exit(2), "bad_request");
        assert_eq!(kind_of_exit(3), "numeric");
        assert_eq!(kind_of_exit(4), "worker_panic");
        assert_eq!(kind_of_exit(5), "deadline");
        assert_eq!(kind_of_exit(6), "stalled");
        assert_eq!(kind_of_exit(7), "session_evicted");
        assert_eq!(kind_of_exit(8), "overloaded");
        assert_eq!(kind_of_exit(130), "cancelled");
        assert_eq!(kind_of_exit(1), "error");
    }

    #[test]
    fn solution_hash_is_bit_exact() {
        let a = [1.0, 2.0, -0.0];
        let b = [1.0, 2.0, 0.0]; // -0.0 and 0.0 differ bitwise
        assert_ne!(solution_hash(&a), solution_hash(&b));
        assert_eq!(solution_hash(&a), solution_hash(&[1.0, 2.0, -0.0]));
    }

    fn tiny_entry() -> ServeEntry {
        let a = splu_matgen::grid3d_anisotropic(3, 3, 1, splu_matgen::GridOptions::default());
        let session = SluSession::analyze(a.pattern(), &splu_core::Options::default()).unwrap();
        ServeEntry {
            session,
            matrix: None,
            analyze_line: None,
            numeric_line: None,
        }
    }

    #[test]
    fn pool_evicts_lru_and_leaves_tombstones() {
        let metrics = Arc::new(MetricsRegistry::new());
        let one = entry_bytes(&tiny_entry());
        // Budget fits two sessions but not three.
        let pool = SessionPool::new(Some(2 * one + one / 2), Arc::clone(&metrics));
        pool.insert("a", tiny_entry()).unwrap();
        pool.insert("b", tiny_entry()).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        drop(pool.pin("a").unwrap());
        pool.insert("c", tiny_entry()).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.evicted_tombstones, 1);
        assert!(stats.resident_bytes <= 2 * one + one / 2);
        assert_eq!(metrics.get(Counter::SessionsEvicted), 1);
        assert!(metrics.get(Counter::ResidentSessionBytesPeak) <= 2 * one + one / 2);
        // The evicted session reports `session_evicted`, the survivors pin.
        let err = pool.pin("b").err().unwrap();
        assert_eq!(err.exit_code, 7);
        assert!(err.message.contains("re-analyze"));
        drop(pool.pin("a").unwrap());
        drop(pool.pin("c").unwrap());
        // Re-analyzing over the tombstone revives the name.
        pool.insert("b", tiny_entry()).unwrap();
        drop(pool.pin("b").unwrap());
    }

    #[test]
    fn pool_never_evicts_pinned_sessions() {
        let metrics = Arc::new(MetricsRegistry::new());
        let one = entry_bytes(&tiny_entry());
        let pool = SessionPool::new(Some(one + one / 2), Arc::clone(&metrics));
        pool.insert("held", tiny_entry()).unwrap();
        let pin = pool.pin("held").unwrap();
        // Inserting a second session overflows the budget, and the only
        // other resident is pinned by an in-flight job: the newcomer
        // itself is evicted (the budget is never exceeded at rest, the
        // pinned session is untouchable).
        pool.insert("next", tiny_entry()).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.evicted_tombstones, 1);
        assert!(stats.resident_bytes <= one + one / 2);
        drop(pin);
        // The pinned session survived; the newcomer reports eviction.
        drop(pool.pin("held").unwrap());
        let err = pool.pin("next").err().unwrap();
        assert_eq!(err.exit_code, 7);
        assert_eq!(metrics.get(Counter::SessionsEvicted), 1);
        assert!(metrics.get(Counter::ResidentSessionBytesPeak) <= one + one / 2);
    }

    #[test]
    fn pool_rejects_a_session_larger_than_the_budget() {
        let metrics = Arc::new(MetricsRegistry::new());
        let pool = SessionPool::new(Some(16), metrics);
        let err = pool.insert("huge", tiny_entry()).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("--session-budget"));
        assert_eq!(pool.stats().sessions, 0);
    }
}
