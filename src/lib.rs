//! # parsplu — Parallel Sparse LU with Postordering and Static Symbolic Factorization
//!
//! A Rust reproduction of *"Using Postordering and Static Symbolic
//! Factorization for Parallel Sparse LU"* (Michel Cosnard & Laura Grigori,
//! IPPS/SPDP 2000). This façade crate re-exports the workspace's public API;
//! see the individual crates for the details:
//!
//! * [`sparse`] — sparse matrix substrate (CSC/CSR/COO, patterns,
//!   permutations, Matrix Market / Harwell–Boeing I/O).
//! * [`ordering`] — maximum transversal (zero-free diagonal) and
//!   minimum-degree ordering on `AᵀA`.
//! * [`symbolic`] — static symbolic factorization (George–Ng), the LU
//!   elimination forest, postordering, block-triangular detection and L/U
//!   supernode partitioning.
//! * [`dense`] — hand-written dense kernels (`gemm`, `trsm`, panel LU).
//! * [`sched`] — S* and eforest-guided task dependence graphs, threaded DAG
//!   executor and the virtual-machine list-scheduling simulator.
//! * [`core`] — the supernodal numerical factorization with partial pivoting
//!   and the [`core::SparseLu`] end-to-end driver.
//! * [`obs`] — observability primitives: the lock-free metrics registry,
//!   epoch-aligned pipeline spans, and the opt-in counting allocator
//!   (installed by the `alloc-track` cargo feature).
//! * [`matgen`] — deterministic synthetic analogues of the paper's seven
//!   benchmark matrices.
//!
//! ## Quickstart
//!
//! ```
//! use parsplu::core::{SparseLu, Options};
//! use parsplu::matgen;
//!
//! // A small oil-reservoir style 3D grid problem (orsreg1 analogue).
//! let a = matgen::grid3d_anisotropic(6, 6, 3, matgen::GridOptions::default());
//! let n = a.ncols();
//! let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
//!
//! let lu = SparseLu::factor(&a, &Options::default()).unwrap();
//! let x = lu.solve(&b);
//!
//! let resid = parsplu::sparse::relative_residual(&a, &x, &b);
//! assert!(resid < 1e-10);
//! ```

pub mod cli;
pub mod persist;
pub mod serve;

pub use splu_core as core;
pub use splu_dense as dense;
pub use splu_matgen as matgen;
pub use splu_obs as obs;
pub use splu_ordering as ordering;
pub use splu_sched as sched;
pub use splu_sparse as sparse;
pub use splu_symbolic as symbolic;
