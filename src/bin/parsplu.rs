//! The `parsplu` command-line tool. See `parsplu --help`.
//!
//! Exit codes: `0` success, `2` usage/input errors, `3` numerical
//! failures, `4` contained worker panics, `5` deadline exceeded,
//! `6` watchdog stall, `130` Ctrl-C (see the `EXIT CODES` section of the
//! usage text).
//!
//! Ctrl-C is routed through a [`parsplu::core::CancelToken`]: the first
//! SIGINT asks the numeric phase to drain at the next task boundary and
//! exit with code 130; a second SIGINT falls back to the default handler
//! and kills the process immediately. The library crates all
//! `forbid(unsafe_code)` — the two `unsafe` blocks below (a raw libc
//! `signal(2)` binding, to avoid pulling in a signal-handling dependency)
//! are confined to this binary.

use parsplu::core::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// With `--features alloc-track`, every allocation in the process is
/// counted so `--report` carries heap current/peak bytes per phase
/// (`parsplu::obs::heap_stats` returns `Some` once this is installed).
#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: parsplu::obs::CountingAlloc = parsplu::obs::CountingAlloc;

const SIGINT: i32 = 2;
/// `SIG_DFL`: restore the default disposition (terminate on SIGINT).
const SIG_DFL: usize = 0;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Async-signal-safe SIGINT handler: a single atomic store. The actual
/// cancellation (which takes locks) happens on the watcher thread.
extern "C" fn on_sigint(_signum: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT handler and a watcher thread that forwards the
/// first Ctrl-C into `token`, then rearms the default handler so a second
/// Ctrl-C kills a run that fails to drain.
fn install_ctrl_c(token: CancelToken) {
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
    std::thread::spawn(move || loop {
        if INTERRUPTED.load(Ordering::SeqCst) {
            token.cancel();
            unsafe {
                signal(SIGINT, SIG_DFL);
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let token = CancelToken::new();
    install_ctrl_c(token.clone());
    match parsplu::cli::run_with_token(&args, Some(&token)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprint!("{}", e.message);
            if !e.message.ends_with('\n') {
                eprintln!();
            }
            std::process::exit(e.exit_code);
        }
    }
}
