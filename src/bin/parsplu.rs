//! The `parsplu` command-line tool. See `parsplu --help`.
//!
//! Exit codes: `0` success, `2` usage/input errors, `3` numerical
//! failures, `4` contained worker panics (see the `EXIT CODES` section of
//! the usage text).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parsplu::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprint!("{}", e.message);
            if !e.message.ends_with('\n') {
                eprintln!();
            }
            std::process::exit(e.exit_code);
        }
    }
}
