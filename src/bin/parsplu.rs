//! The `parsplu` command-line tool. See `parsplu --help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parsplu::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprint!("{msg}");
            if !msg.ends_with('\n') {
                eprintln!();
            }
            std::process::exit(2);
        }
    }
}
