//! Command-line interface: `parsplu <command> [args]`.
//!
//! The logic lives here (returning the output as a `String`) so the
//! integration tests can drive it without spawning processes; the
//! `parsplu` binary is a thin wrapper.

use splu_core::{
    analyze, analyze_with, estimate_inverse_1norm, BreakdownPolicy, CancelToken, KernelChoice,
    LuError, MatrixMeta, ObsSession, Options, OrderingChoice, PivotRule, RunStatus, SparseLu,
    SymbolicRequest, TaskGraphKind, WatchdogConfig,
};
use splu_matgen::{manufactured_rhs, paper_matrix, Scale};
use splu_sched::Mapping;
use splu_sparse::io::{read_matrix_market, write_matrix_market};
use splu_sparse::{relative_residual, CscMatrix};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// A failed CLI run: the message to print on stderr plus the process exit
/// code the binary should use (see the `EXIT CODES` section of [`USAGE`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable error text.
    pub message: String,
    /// `2` usage/input errors, `3` numerical failures, `4` contained
    /// worker panics, `5` deadline exceeded, `6` watchdog stall,
    /// `7` session evicted under the serve memory budget, `8` serve
    /// overload / shutdown refusal, `9` duplicate job id with its cached
    /// response evicted, `10` journal append failure after an in-memory
    /// mutation, `130` cancelled (Ctrl-C).
    pub exit_code: i32,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError {
            message,
            exit_code: 2,
        }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::from(message.to_string())
    }
}

impl From<LuError> for CliError {
    fn from(e: LuError) -> Self {
        let exit_code = match &e {
            LuError::StructurallySingular { .. }
            | LuError::NumericallySingular { .. }
            | LuError::NonFiniteInput { .. }
            | LuError::NonFinitePivot { .. } => 3,
            LuError::WorkerPanic { .. } => 4,
            LuError::DeadlineExceeded { .. } => 5,
            LuError::Stalled { .. } => 6,
            LuError::SessionEvicted { .. } => 7,
            // 128 + SIGINT, the shell convention for an interrupted run.
            LuError::Cancelled { .. } => 130,
            _ => 2,
        };
        CliError {
            message: e.to_string(),
            exit_code,
        }
    }
}

/// Usage text for `--help` and errors.
pub const USAGE: &str = "\
parsplu — parallel sparse LU with postordering and static symbolic factorization

USAGE:
  parsplu analyze <matrix.mtx> [options]        print analysis statistics
  parsplu solve   <matrix.mtx> [options]        factor and solve (manufactured RHS)
  parsplu condest <matrix.mtx> [options]        estimate the 1-norm condition number
  parsplu gen     <name> <out.mtx> [--reduced]  write a benchmark matrix
                  (names: sherman3 sherman5 lnsp3937 lns3937 orsreg1 saylr4 goodwin)
  parsplu serve   [serve options]               long-running job service

SERVE MODE:
  Reads line-delimited jobs and writes one JSON line per job, dispatching
  jobs concurrently over `--workers` threads [4]. Jobs on the same named
  session run in submission order; different sessions run in parallel.
  Responses appear in completion order. Without `--listen` jobs come from
  stdin; with it the daemon accepts any number of concurrent socket
  clients multiplexed onto the same workers and sessions.
  Serve options:
    --workers <N>          worker lanes/threads                      [4]
    --listen <addr>        accept socket clients: `host:port` (TCP, port 0
                           picks an ephemeral port, announced on stderr)
                           or `unix:<path>` (Unix domain socket)
    --queue-cap <N>        bounded per-lane queue depth [64]; a full lane
                           refuses the job with a structured `overloaded`
                           error carrying queue_depth and retry_after_hint
    --max-line-bytes <S>   reject job lines longer than S bytes [16m]
                           (sizes accept k/m/g suffixes); the frame is
                           discarded and the stream resyncs at the next
                           newline
    --session-budget <S>   cap resident session bytes (symbolic + factor
                           storage + retained values); idle sessions are
                           evicted LRU-first, and a job naming an evicted
                           session gets a `session_evicted` error (exit
                           code 7) until it re-runs `analyze`
    --idle-timeout <secs>  drop socket connections idle longer than this
    --state-dir <dir>      durable session journal: acknowledged analyze/
                           factor/refactor jobs are CRC-framed and appended
                           here, then replayed on startup so sessions
                           survive a crash bitwise-identically (torn tails
                           are truncated, never fatal); the journal is
                           compacted down to live-session state as it grows
    --durability strict|relaxed   `strict` fsyncs each journal append
                           before the job is acknowledged (SIGKILL-safe);
                           `relaxed` batches syncs [strict]
  Job grammar (tokens are whitespace-separated):
    analyze  <session> <matrix.mtx> [options]   symbolic analysis, cached
    factor   <session> <values.mtx> [options]   numeric-only factorization
    refactor <session> <values.mtx> [options]   numeric refactorization
                                                reusing the factor storage
    solve    <session> [--rhs <file>] [--transpose] [--refine]
    stats                                       daemon counters and depths
    shutdown                                    drain all queued jobs,
                                                refuse new ones, ack last
    quit                                        end this feeder/connection
  Any job may carry `--job-id <token>`: an idempotency key. Retrying a job
  under the same id returns the original cached response instead of
  re-executing (a `duplicate_replay` error, exit 9, once the response has
  aged out of the bounded cache); ids are journaled, so retries stay safe
  across a daemon crash and restart.
  `factor`/`refactor` values must match the analyzed pattern (a mismatch is
  a structured error, the session stays usable). Per-job `--time-limit` /
  `--watchdog` bound that job alone. Each response embeds a run report
  (schema `parsplu-run-report/1`) for analyze/factor/refactor jobs; error
  responses carry a machine-readable `kind` (bad_request, numeric,
  worker_panic, deadline, stalled, session_evicted, overloaded,
  duplicate_replay, journal_corrupt, shutting_down, cancelled,
  oversize_frame, invalid_frame, idle_timeout) next to the exit code a
  local run would have used. `solve` responses include `x_hash`, an FNV-1a
  hash of the solution's exact bit patterns, for bitwise reproducibility
  checks.

OPTIONS:
  --threads <N>         worker threads for the numerical phase   [1]
  --front-threads <N>   worker threads for the symbolic front half
                        (static fill, assembly, postorder); the factor
                        structure is bitwise identical for every N  [1]
  --graph eforest|sstar task dependence graph                    [eforest]
  --ordering mindeg|mindeg-multi|natural|rcm                     [mindeg]
                        `mindeg-multi` eliminates an independent set of
                        minimum-degree vertices per pass (a different but
                        valid permutation); `md` is accepted as an alias
                        for `mindeg`
  --no-postorder        skip the eforest postordering
  --no-amalgamation     keep exact supernodes
  --dynamic             dynamic scheduling instead of static 1D
  --equilibrate         row/column scaling before factorization
  --refine              one step of iterative refinement
  --transpose           solve the transposed system instead
  --rule partial|threshold:<tau>|diagonal   pivot-selection rule [partial]
  --breakdown error|perturb|perturb:<eps>   pivot-breakdown policy [error]
                        `error` fails at the first unacceptable pivot;
                        `perturb` replaces it by sign(d)·eps·||A||_1 and
                        recovers through iterative refinement
                        [default eps: sqrt(machine epsilon)]
  --kernels portable|simd|auto   dense kernel implementation      [portable]
                        (simd/auto need the `simd` cargo feature; factors
                        are bitwise identical under every choice)
  --time-limit <secs>   deadline for the whole run (symbolic front half
                        and numerical phase); an expired run drains its
                        workers and exits with code 5
  --watchdog <ms>       liveness watchdog: if the scheduler makes no
                        progress for this window with tasks pending, the
                        run aborts with a stall report and exit code 6
  --report <file>       write a machine-readable run report (JSON, schema
                        `parsplu-run-report/1`): versions, resolved
                        options and kernel, per-phase wall times, fill and
                        kernel-flop counters, scheduler stats, factor
                        health and the exit status. Written on structured
                        failures too (status records the error). Build
                        with `--features alloc-track` to include heap
                        current/peak bytes
  --trace <file>        write a Chrome trace (chrome://tracing, Perfetto)
                        of the whole pipeline on one shared timeline:
                        driver phases, per-front-thread fill chunks and
                        postorder segments, and numeric executor workers
  --dot-forest <file>   (analyze) write the block eforest as Graphviz DOT
  --dot-graph <file>    (analyze) write the task graph as Graphviz DOT
  --rhs <file>          (solve) right-hand side, one value per line
                        [default: manufactured b = A·x with known x]
  --out <file>          (solve) write the solution, one value per line

EXIT CODES:
  0    success
  2    usage or input error (bad flags, unreadable or malformed files)
  3    numerical failure (structural/numerical singularity, NaN/Inf input
       or overflow during factorization)
  4    a worker thread panicked; the panic was contained and reported
  5    --time-limit deadline exceeded (run drained cleanly)
  6    the liveness watchdog declared a stall (diagnosis on stderr)
  7    serve: the session was evicted under --session-budget (re-analyze)
  8    serve: overloaded (bounded queue full) or shutting down
  9    serve: duplicate --job-id already applied, original response no
       longer cached (the work was done; do not blindly retry)
  10   serve: the journal append failed after the job mutated memory;
       durability is not guaranteed until the state-dir is writable
  130  cancelled by Ctrl-C (128 + SIGINT); the run drained cleanly
";

/// Parsed global options (shared with the serve module, which parses the
/// same flag grammar per job line).
pub(crate) struct Cli {
    pub(crate) opts: Options,
    pub(crate) refine: bool,
    pub(crate) transpose: bool,
    dot_forest: Option<String>,
    dot_graph: Option<String>,
    pub(crate) rhs: Option<String>,
    out: Option<String>,
    report: Option<String>,
    trace: Option<String>,
}

impl Cli {
    /// The observability session the flags imply: full (with executor
    /// event streams) when a Chrome trace was requested, report-grade for
    /// `--report` alone, none otherwise.
    fn session(&self) -> Option<ObsSession> {
        if self.trace.is_some() {
            Some(ObsSession::with_events())
        } else if self.report.is_some() {
            Some(ObsSession::new())
        } else {
            None
        }
    }
}

pub(crate) fn parse_flags(args: &[String], token: Option<&CancelToken>) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: Options::default(),
        refine: false,
        transpose: false,
        dot_forest: None,
        dot_graph: None,
        rhs: None,
        out: None,
        report: None,
        trace: None,
    };
    cli.opts.budget.token = token.cloned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                cli.opts.threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--graph" => {
                let v = it.next().ok_or("--graph needs a value")?;
                cli.opts.task_graph = match v.as_str() {
                    "eforest" => TaskGraphKind::EForest,
                    "sstar" => TaskGraphKind::SStar,
                    _ => return Err(format!("unknown graph `{v}`")),
                };
            }
            "--ordering" => {
                let v = it.next().ok_or("--ordering needs a value")?;
                cli.opts.ordering = match v.as_str() {
                    "mindeg" | "md" => OrderingChoice::MinDegreeAtA,
                    "mindeg-multi" => OrderingChoice::MinDegreeMulti,
                    "natural" => OrderingChoice::Natural,
                    "rcm" => OrderingChoice::Rcm,
                    _ => return Err(format!("unknown ordering `{v}`")),
                };
            }
            "--front-threads" => {
                let v = it.next().ok_or("--front-threads needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad front-thread count `{v}`"))?;
                if n == 0 {
                    return Err("front-thread count must be positive".to_string());
                }
                cli.opts.front_threads = n;
            }
            "--rhs" => {
                cli.rhs = Some(it.next().ok_or("--rhs needs a path")?.clone());
            }
            "--out" => {
                cli.out = Some(it.next().ok_or("--out needs a path")?.clone());
            }
            "--report" => {
                cli.report = Some(it.next().ok_or("--report needs a path")?.clone());
            }
            "--trace" => {
                cli.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            "--dot-forest" => {
                cli.dot_forest = Some(it.next().ok_or("--dot-forest needs a path")?.clone());
            }
            "--dot-graph" => {
                cli.dot_graph = Some(it.next().ok_or("--dot-graph needs a path")?.clone());
            }
            "--rule" => {
                let v = it.next().ok_or("--rule needs a value")?;
                cli.opts.pivot_rule = if v == "partial" {
                    PivotRule::Partial
                } else if v == "diagonal" {
                    PivotRule::Diagonal
                } else if let Some(tau) = v.strip_prefix("threshold:") {
                    let tau: f64 = tau.parse().map_err(|_| format!("bad threshold `{tau}`"))?;
                    if !(tau > 0.0 && tau <= 1.0) {
                        return Err(format!("threshold must be in (0, 1], got {tau}"));
                    }
                    PivotRule::Threshold(tau)
                } else {
                    return Err(format!("unknown pivot rule `{v}`"));
                };
            }
            "--breakdown" => {
                let v = it.next().ok_or("--breakdown needs a value")?;
                cli.opts.breakdown = if v == "error" {
                    BreakdownPolicy::Error
                } else if v == "perturb" {
                    BreakdownPolicy::perturb_default()
                } else if let Some(eps) = v.strip_prefix("perturb:") {
                    let eps: f64 = eps
                        .parse()
                        .map_err(|_| format!("bad perturbation `{eps}`"))?;
                    if !(eps > 0.0 && eps.is_finite()) {
                        return Err(format!("perturbation must be positive, got {eps}"));
                    }
                    BreakdownPolicy::Perturb { eps }
                } else {
                    return Err(format!("unknown breakdown policy `{v}`"));
                };
            }
            "--kernels" => {
                let v = it.next().ok_or("--kernels needs a value")?;
                cli.opts.kernels = match v.as_str() {
                    "portable" => KernelChoice::Portable,
                    "simd" => KernelChoice::Simd,
                    "auto" => KernelChoice::Auto,
                    _ => return Err(format!("unknown kernel choice `{v}`")),
                };
            }
            "--time-limit" => {
                let v = it.next().ok_or("--time-limit needs a value (seconds)")?;
                let secs: f64 = v.parse().map_err(|_| format!("bad time limit `{v}`"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(format!("time limit must be positive, got {v}"));
                }
                cli.opts.budget.deadline = Some(Instant::now() + Duration::from_secs_f64(secs));
            }
            "--watchdog" => {
                let v = it.next().ok_or("--watchdog needs a value (milliseconds)")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad watchdog window `{v}`"))?;
                if ms == 0 {
                    return Err("watchdog window must be positive".to_string());
                }
                cli.opts.budget.watchdog = Some(WatchdogConfig::new(Duration::from_millis(ms)));
            }
            "--no-postorder" => cli.opts.postorder = false,
            "--no-amalgamation" => cli.opts.amalgamation = None,
            "--dynamic" => cli.opts.mapping = Mapping::Dynamic,
            "--equilibrate" => cli.opts.equilibrate = true,
            "--refine" => cli.refine = true,
            "--transpose" => cli.transpose = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(cli)
}

pub(crate) fn load(path: &str) -> Result<CscMatrix, String> {
    read_matrix_market(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))
}

pub(crate) fn matrix_name(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

/// Writes the artifacts `--report` / `--trace` requested, returning the
/// notes to append to the command output. Called on failure paths too, so
/// a structured error still leaves a report whose `status` records it.
fn write_observability(
    session: &ObsSession,
    cli: &Cli,
    matrix: MatrixMeta,
    status: RunStatus,
) -> Result<Vec<String>, String> {
    let mut notes = Vec::new();
    if let Some(p) = &cli.report {
        let report = session.report(matrix, &cli.opts, status);
        std::fs::write(p, report.to_json()).map_err(|e| format!("writing {p}: {e}"))?;
        notes.push(format!("wrote run report to {p}"));
    }
    if let Some(p) = &cli.trace {
        std::fs::write(p, session.chrome_json()).map_err(|e| format!("writing {p}: {e}"))?;
        notes.push(format!("wrote pipeline trace to {p}"));
    }
    Ok(notes)
}

fn cmd_analyze(
    path: &str,
    flags: &[String],
    token: Option<&CancelToken>,
) -> Result<String, CliError> {
    let cli = parse_flags(flags, token)?;
    let session = cli.session();
    let a = {
        let _p = session.as_ref().map(|o| o.phase("parse"));
        load(path)?
    };
    let ms = splu_sparse::stats::matrix_stats(&a);
    let sym = match &session {
        Some(o) => {
            let sreq = SymbolicRequest::from_options(&cli.opts).observe(o.clone());
            match analyze_with(a.pattern(), &cli.opts, &sreq) {
                Ok(sym) => sym,
                Err(e) => {
                    let meta = MatrixMeta {
                        name: matrix_name(path),
                        n: a.ncols(),
                        nnz: a.nnz(),
                    };
                    write_observability(o, &cli, meta, RunStatus::from_error(&e))?;
                    return Err(e.into());
                }
            }
        }
        None => analyze(a.pattern(), &cli.opts)?,
    };
    let s = &sym.stats;
    let mut out = String::new();
    let _ = writeln!(out, "matrix            : {path}");
    let _ = writeln!(out, "order             : {}", s.n);
    let _ = writeln!(out, "nnz(A)            : {}", s.nnz_a);
    let _ = writeln!(
        out,
        "structure         : bandwidth {}, symmetry {:.2} (values {:.2}), {} diagonal",
        ms.bandwidth,
        ms.structural_symmetry,
        ms.numerical_symmetry,
        if ms.zero_free_diagonal {
            "zero-free"
        } else {
            "deficient"
        }
    );
    let _ = writeln!(
        out,
        "nnz(Abar)         : {} ({:.2}x)",
        s.nnz_filled, s.fill_ratio
    );
    let _ = writeln!(
        out,
        "supernodes        : {} (exact {}, max width {})",
        s.supernodes, s.supernodes_exact, s.max_supernode_width
    );
    let _ = writeln!(out, "BTF blocks        : {}", s.btf_blocks);
    let _ = writeln!(
        out,
        "task graph        : {} tasks, {} edges, critical path {}",
        s.graph_tasks, s.graph_edges, s.critical_path
    );
    let _ = writeln!(out, "estimated flops   : {:.3e}", s.flops_estimate);
    if let Some(p) = &cli.dot_forest {
        std::fs::write(p, sym.block_forest.to_dot("eforest")).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote block eforest DOT to {p}");
    }
    if let Some(p) = &cli.dot_graph {
        let g = sym.build_graph(cli.opts.task_graph);
        std::fs::write(p, g.to_dot("tasks")).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote task graph DOT to {p}");
    }
    if let Some(o) = &session {
        let meta = MatrixMeta::from_stats(&matrix_name(path), &sym.stats);
        for note in write_observability(o, &cli, meta, RunStatus::success())? {
            let _ = writeln!(out, "{note}");
        }
    }
    Ok(out)
}

pub(crate) fn read_vector(path: &str, n: usize) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v: Vec<f64> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with('%'))
        .map(|l| {
            l.parse::<f64>()
                .map_err(|_| format!("bad value `{l}` in {path}"))
        })
        .collect::<Result<_, _>>()?;
    if v.len() != n {
        return Err(format!("{path}: expected {n} values, found {}", v.len()));
    }
    Ok(v)
}

fn cmd_solve(
    path: &str,
    flags: &[String],
    token: Option<&CancelToken>,
) -> Result<String, CliError> {
    let cli = parse_flags(flags, token)?;
    let session = cli.session();
    let a = {
        let _p = session.as_ref().map(|o| o.phase("parse"));
        load(path)?
    };
    let b = match &cli.rhs {
        Some(p) => read_vector(p, a.nrows())?,
        None => manufactured_rhs(&a, 1).1,
    };
    let t0 = std::time::Instant::now();
    let lu = match &session {
        Some(o) => match SparseLu::factor_observed(&a, &cli.opts, o) {
            Ok(lu) => lu,
            Err(e) => {
                let meta = MatrixMeta {
                    name: matrix_name(path),
                    n: a.ncols(),
                    nnz: a.nnz(),
                };
                write_observability(o, &cli, meta, RunStatus::from_error(&e))?;
                return Err(e.into());
            }
        },
        None => SparseLu::factor(&a, &cli.opts)?,
    };
    let t_factor = t0.elapsed();
    let t1 = std::time::Instant::now();
    let x = {
        let _p = session.as_ref().map(|o| o.phase("solve"));
        if cli.transpose {
            lu.try_solve_transposed(&b)?
        } else if cli.refine {
            lu.try_solve_refined(&a, &b, 1e-14, 2)?.0
        } else {
            lu.try_solve(&b)?
        }
    };
    let t_solve = t1.elapsed();
    let resid = if cli.transpose {
        relative_residual(&a.transpose(), &x, &b)
    } else {
        relative_residual(&a, &x, &b)
    };
    let st = lu.storage();
    let (dsign, dln) = lu.determinant();
    let mut out = String::new();
    let _ = writeln!(out, "factor time       : {t_factor:?}");
    let _ = writeln!(out, "solve time        : {t_solve:?}");
    let _ = writeln!(out, "scaled residual   : {resid:.3e}");
    let _ = writeln!(out, "growth factor     : {:.3e}", lu.growth(&a));
    let health = lu.health();
    if health.is_perturbed() {
        let _ = writeln!(
            out,
            "pivot perturbations: {} column(s), max {:.3e} (policy `perturb`; solves refine against the input)",
            health.perturbed_columns.len(),
            health.max_perturbation
        );
        if let Some(c) = health.condest {
            let _ = writeln!(out, "condest (perturbed): {c:.3e}");
        }
    }
    let _ = writeln!(
        out,
        "determinant       : {} exp({dln:.6})",
        if dsign > 0.0 { "+" } else { "-" }
    );
    if let Some(p) = &cli.out {
        let mut text = String::with_capacity(x.len() * 24);
        for v in &x {
            let _ = writeln!(text, "{v:.17e}");
        }
        std::fs::write(p, text).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote solution to {p}");
    }
    let _ = writeln!(
        out,
        "factor storage    : {} words ({:.1}% padding)",
        st.words,
        100.0 * st.padding_fraction
    );
    if let Some(o) = &session {
        let meta = MatrixMeta::from_stats(&matrix_name(path), lu.stats());
        for note in write_observability(o, &cli, meta, RunStatus::success())? {
            let _ = writeln!(out, "{note}");
        }
    }
    if resid > 1e-8 {
        let _ = writeln!(out, "WARNING: large residual — check conditioning");
    }
    Ok(out)
}

fn cmd_condest(
    path: &str,
    flags: &[String],
    token: Option<&CancelToken>,
) -> Result<String, CliError> {
    let cli = parse_flags(flags, token)?;
    let a = load(path)?;
    let lu = SparseLu::factor(&a, &cli.opts)?;
    let inv_norm = estimate_inverse_1norm(&lu, a.ncols(), 6);
    let cond = inv_norm * a.one_norm();
    Ok(format!(
        "||A||_1          : {:.6e}\n||A^-1||_1 (est) : {:.6e}\ncond_1 (est)     : {:.6e}\n",
        a.one_norm(),
        inv_norm,
        cond
    ))
}

fn cmd_gen(name: &str, out_path: &str, flags: &[String]) -> Result<String, CliError> {
    let scale = if flags.iter().any(|f| f == "--reduced") {
        Scale::Reduced
    } else {
        Scale::Full
    };
    let unknown: Vec<&String> = flags.iter().filter(|f| *f != "--reduced").collect();
    if !unknown.is_empty() {
        return Err(format!("unknown option `{}`", unknown[0]).into());
    }
    let a =
        paper_matrix(name, scale).ok_or_else(|| format!("unknown matrix `{name}` (see --help)"))?;
    write_matrix_market(&a, Path::new(out_path)).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} ({}x{}, {} nonzeros)\n",
        out_path,
        a.nrows(),
        a.ncols(),
        a.nnz()
    ))
}

use std::sync::Mutex;

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Flattens a pretty-printed JSON document onto one line. Safe because the
/// writer escapes newlines inside string values, so every literal newline
/// and its indentation is inter-token whitespace.
pub(crate) fn compact_json(pretty: &str) -> String {
    pretty.lines().map(str::trim_start).collect()
}

// The serve machinery (bounded lanes, session pool with budgeted
// eviction, socket transport) lives in `crate::serve`; the stdio entry
// point is re-exported here for the integration tests that predate it.
pub use crate::serve::serve_loop;
use crate::serve::{parse_size, serve_daemon, serve_loop_with, Listener, ServeConfig};

fn cmd_serve(flags: &[String], token: Option<&CancelToken>) -> Result<String, CliError> {
    let mut cfg = ServeConfig::default();
    let mut listen: Option<String> = None;
    let mut it = flags.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::from("--workers needs a value"))?;
                cfg.workers = v
                    .parse()
                    .map_err(|_| CliError::from(format!("bad worker count `{v}`")))?;
                if cfg.workers == 0 {
                    return Err(CliError::from("worker count must be positive"));
                }
            }
            "--listen" => {
                listen = Some(
                    it.next()
                        .ok_or_else(|| CliError::from("--listen needs an address"))?
                        .clone(),
                );
            }
            "--queue-cap" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::from("--queue-cap needs a value"))?;
                cfg.queue_cap = v
                    .parse()
                    .map_err(|_| CliError::from(format!("bad queue cap `{v}`")))?;
                if cfg.queue_cap == 0 {
                    return Err(CliError::from("queue cap must be positive"));
                }
            }
            "--max-line-bytes" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::from("--max-line-bytes needs a size"))?;
                let bytes = parse_size(v)?;
                if bytes == 0 {
                    return Err(CliError::from("line-size cap must be positive"));
                }
                cfg.max_line_bytes = usize::try_from(bytes)
                    .map_err(|_| CliError::from(format!("line-size cap `{v}` too large")))?;
            }
            "--session-budget" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::from("--session-budget needs a size"))?;
                let bytes = parse_size(v)?;
                if bytes == 0 {
                    return Err(CliError::from("session budget must be positive"));
                }
                cfg.session_budget = Some(bytes);
            }
            "--idle-timeout" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::from("--idle-timeout needs a value (seconds)"))?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| CliError::from(format!("bad idle timeout `{v}`")))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(CliError::from("idle timeout must be positive"));
                }
                cfg.idle_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--state-dir" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::from("--state-dir needs a directory path"))?;
                cfg.state_dir = Some(std::path::PathBuf::from(v));
            }
            "--durability" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::from("--durability needs `strict` or `relaxed`"))?;
                cfg.durability = crate::persist::Durability::parse(v).map_err(CliError::from)?;
            }
            other => return Err(CliError::from(format!("unknown serve option `{other}`"))),
        }
    }
    match listen {
        Some(addr) => {
            let listener = Listener::bind(&addr)?;
            // Announce the bound address immediately (stdout is reserved
            // for the final summary) so clients can find an ephemeral
            // port.
            eprintln!(
                "parsplu serve: listening on {}",
                listener.local_addr_string()
            );
            let summary = serve_daemon(cfg, listener, token)?;
            Ok(format!(
                "served {} job(s) over {} connection(s)\n",
                summary.jobs, summary.connections
            ))
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = Mutex::new(std::io::stdout());
            let n = serve_loop_with(cfg, stdin.lock(), &stdout, token)?;
            Ok(format!("served {n} job(s)\n"))
        }
    }
}

/// Runs the CLI on the given arguments (without the program name), returning
/// the output text or a [`CliError`] carrying the message and the process
/// exit code.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_with_token(args, None)
}

/// Like [`run`], but wires an external [`CancelToken`] into the numeric
/// phase's run budget. The binary's Ctrl-C handler cancels this token, so
/// an interrupted factorization drains its workers and exits with the
/// structured code `130` instead of being killed mid-write.
pub fn run_with_token(args: &[String], token: Option<&CancelToken>) -> Result<String, CliError> {
    match args {
        [] => Err(CliError::from(USAGE)),
        [h] if h == "--help" || h == "-h" || h == "help" => Ok(USAGE.to_string()),
        [cmd, rest @ ..] => match (cmd.as_str(), rest) {
            ("analyze", [path, flags @ ..]) => cmd_analyze(path, flags, token),
            ("solve", [path, flags @ ..]) => cmd_solve(path, flags, token),
            ("condest", [path, flags @ ..]) => cmd_condest(path, flags, token),
            ("gen", [name, out, flags @ ..]) => cmd_gen(name, out, flags),
            ("serve", flags) => cmd_serve(flags, token),
            _ => Err(CliError::from(format!(
                "unknown or incomplete command `{cmd}`\n\n{USAGE}"
            ))),
        },
    }
}
