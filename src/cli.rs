//! Command-line interface: `parsplu <command> [args]`.
//!
//! The logic lives here (returning the output as a `String`) so the
//! integration tests can drive it without spawning processes; the
//! `parsplu` binary is a thin wrapper.

use splu_core::{
    analyze, analyze_with, estimate_inverse_1norm, BreakdownPolicy, CancelToken, KernelChoice,
    LuError, MatrixMeta, ObsSession, Options, OrderingChoice, PivotRule, RunStatus, SparseLu,
    SymbolicRequest, TaskGraphKind, WatchdogConfig,
};
use splu_matgen::{manufactured_rhs, paper_matrix, Scale};
use splu_sched::Mapping;
use splu_sparse::io::{read_matrix_market, write_matrix_market};
use splu_sparse::{relative_residual, CscMatrix};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// A failed CLI run: the message to print on stderr plus the process exit
/// code the binary should use (see the `EXIT CODES` section of [`USAGE`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable error text.
    pub message: String,
    /// `2` usage/input errors, `3` numerical failures, `4` contained
    /// worker panics, `5` deadline exceeded, `6` watchdog stall,
    /// `130` cancelled (Ctrl-C).
    pub exit_code: i32,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError {
            message,
            exit_code: 2,
        }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::from(message.to_string())
    }
}

impl From<LuError> for CliError {
    fn from(e: LuError) -> Self {
        let exit_code = match &e {
            LuError::StructurallySingular { .. }
            | LuError::NumericallySingular { .. }
            | LuError::NonFiniteInput { .. }
            | LuError::NonFinitePivot { .. } => 3,
            LuError::WorkerPanic { .. } => 4,
            LuError::DeadlineExceeded { .. } => 5,
            LuError::Stalled { .. } => 6,
            // 128 + SIGINT, the shell convention for an interrupted run.
            LuError::Cancelled { .. } => 130,
            _ => 2,
        };
        CliError {
            message: e.to_string(),
            exit_code,
        }
    }
}

/// Usage text for `--help` and errors.
pub const USAGE: &str = "\
parsplu — parallel sparse LU with postordering and static symbolic factorization

USAGE:
  parsplu analyze <matrix.mtx> [options]        print analysis statistics
  parsplu solve   <matrix.mtx> [options]        factor and solve (manufactured RHS)
  parsplu condest <matrix.mtx> [options]        estimate the 1-norm condition number
  parsplu gen     <name> <out.mtx> [--reduced]  write a benchmark matrix
                  (names: sherman3 sherman5 lnsp3937 lns3937 orsreg1 saylr4 goodwin)
  parsplu serve   [--workers <N>]               long-running job loop on stdin

SERVE MODE:
  Reads line-delimited jobs from stdin and writes one JSON line per job to
  stdout, dispatching jobs concurrently over `--workers` threads [4]. Jobs
  on the same named session run in submission order; different sessions
  run in parallel. Responses appear in completion order.
  Job grammar (tokens are whitespace-separated):
    analyze  <session> <matrix.mtx> [options]   symbolic analysis, cached
    factor   <session> <values.mtx> [options]   numeric-only factorization
    refactor <session> <values.mtx> [options]   numeric refactorization
                                                reusing the factor storage
    solve    <session> [--rhs <file>] [--transpose] [--refine]
    quit                                        drain workers and exit
  `factor`/`refactor` values must match the analyzed pattern (a mismatch is
  a structured error, the session stays usable). Per-job `--time-limit` /
  `--watchdog` bound that job alone. Each response embeds a run report
  (schema `parsplu-run-report/1`) for analyze/factor/refactor jobs.

OPTIONS:
  --threads <N>         worker threads for the numerical phase   [1]
  --front-threads <N>   worker threads for the symbolic front half
                        (static fill, assembly, postorder); the factor
                        structure is bitwise identical for every N  [1]
  --graph eforest|sstar task dependence graph                    [eforest]
  --ordering mindeg|mindeg-multi|natural|rcm                     [mindeg]
                        `mindeg-multi` eliminates an independent set of
                        minimum-degree vertices per pass (a different but
                        valid permutation); `md` is accepted as an alias
                        for `mindeg`
  --no-postorder        skip the eforest postordering
  --no-amalgamation     keep exact supernodes
  --dynamic             dynamic scheduling instead of static 1D
  --equilibrate         row/column scaling before factorization
  --refine              one step of iterative refinement
  --transpose           solve the transposed system instead
  --rule partial|threshold:<tau>|diagonal   pivot-selection rule [partial]
  --breakdown error|perturb|perturb:<eps>   pivot-breakdown policy [error]
                        `error` fails at the first unacceptable pivot;
                        `perturb` replaces it by sign(d)·eps·||A||_1 and
                        recovers through iterative refinement
                        [default eps: sqrt(machine epsilon)]
  --kernels portable|simd|auto   dense kernel implementation      [portable]
                        (simd/auto need the `simd` cargo feature; factors
                        are bitwise identical under every choice)
  --time-limit <secs>   deadline for the whole run (symbolic front half
                        and numerical phase); an expired run drains its
                        workers and exits with code 5
  --watchdog <ms>       liveness watchdog: if the scheduler makes no
                        progress for this window with tasks pending, the
                        run aborts with a stall report and exit code 6
  --report <file>       write a machine-readable run report (JSON, schema
                        `parsplu-run-report/1`): versions, resolved
                        options and kernel, per-phase wall times, fill and
                        kernel-flop counters, scheduler stats, factor
                        health and the exit status. Written on structured
                        failures too (status records the error). Build
                        with `--features alloc-track` to include heap
                        current/peak bytes
  --trace <file>        write a Chrome trace (chrome://tracing, Perfetto)
                        of the whole pipeline on one shared timeline:
                        driver phases, per-front-thread fill chunks and
                        postorder segments, and numeric executor workers
  --dot-forest <file>   (analyze) write the block eforest as Graphviz DOT
  --dot-graph <file>    (analyze) write the task graph as Graphviz DOT
  --rhs <file>          (solve) right-hand side, one value per line
                        [default: manufactured b = A·x with known x]
  --out <file>          (solve) write the solution, one value per line

EXIT CODES:
  0    success
  2    usage or input error (bad flags, unreadable or malformed files)
  3    numerical failure (structural/numerical singularity, NaN/Inf input
       or overflow during factorization)
  4    a worker thread panicked; the panic was contained and reported
  5    --time-limit deadline exceeded (run drained cleanly)
  6    the liveness watchdog declared a stall (diagnosis on stderr)
  130  cancelled by Ctrl-C (128 + SIGINT); the run drained cleanly
";

/// Parsed global options.
struct Cli {
    opts: Options,
    refine: bool,
    transpose: bool,
    dot_forest: Option<String>,
    dot_graph: Option<String>,
    rhs: Option<String>,
    out: Option<String>,
    report: Option<String>,
    trace: Option<String>,
}

impl Cli {
    /// The observability session the flags imply: full (with executor
    /// event streams) when a Chrome trace was requested, report-grade for
    /// `--report` alone, none otherwise.
    fn session(&self) -> Option<ObsSession> {
        if self.trace.is_some() {
            Some(ObsSession::with_events())
        } else if self.report.is_some() {
            Some(ObsSession::new())
        } else {
            None
        }
    }
}

fn parse_flags(args: &[String], token: Option<&CancelToken>) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: Options::default(),
        refine: false,
        transpose: false,
        dot_forest: None,
        dot_graph: None,
        rhs: None,
        out: None,
        report: None,
        trace: None,
    };
    cli.opts.budget.token = token.cloned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                cli.opts.threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--graph" => {
                let v = it.next().ok_or("--graph needs a value")?;
                cli.opts.task_graph = match v.as_str() {
                    "eforest" => TaskGraphKind::EForest,
                    "sstar" => TaskGraphKind::SStar,
                    _ => return Err(format!("unknown graph `{v}`")),
                };
            }
            "--ordering" => {
                let v = it.next().ok_or("--ordering needs a value")?;
                cli.opts.ordering = match v.as_str() {
                    "mindeg" | "md" => OrderingChoice::MinDegreeAtA,
                    "mindeg-multi" => OrderingChoice::MinDegreeMulti,
                    "natural" => OrderingChoice::Natural,
                    "rcm" => OrderingChoice::Rcm,
                    _ => return Err(format!("unknown ordering `{v}`")),
                };
            }
            "--front-threads" => {
                let v = it.next().ok_or("--front-threads needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad front-thread count `{v}`"))?;
                if n == 0 {
                    return Err("front-thread count must be positive".to_string());
                }
                cli.opts.front_threads = n;
            }
            "--rhs" => {
                cli.rhs = Some(it.next().ok_or("--rhs needs a path")?.clone());
            }
            "--out" => {
                cli.out = Some(it.next().ok_or("--out needs a path")?.clone());
            }
            "--report" => {
                cli.report = Some(it.next().ok_or("--report needs a path")?.clone());
            }
            "--trace" => {
                cli.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            "--dot-forest" => {
                cli.dot_forest = Some(it.next().ok_or("--dot-forest needs a path")?.clone());
            }
            "--dot-graph" => {
                cli.dot_graph = Some(it.next().ok_or("--dot-graph needs a path")?.clone());
            }
            "--rule" => {
                let v = it.next().ok_or("--rule needs a value")?;
                cli.opts.pivot_rule = if v == "partial" {
                    PivotRule::Partial
                } else if v == "diagonal" {
                    PivotRule::Diagonal
                } else if let Some(tau) = v.strip_prefix("threshold:") {
                    let tau: f64 = tau.parse().map_err(|_| format!("bad threshold `{tau}`"))?;
                    if !(tau > 0.0 && tau <= 1.0) {
                        return Err(format!("threshold must be in (0, 1], got {tau}"));
                    }
                    PivotRule::Threshold(tau)
                } else {
                    return Err(format!("unknown pivot rule `{v}`"));
                };
            }
            "--breakdown" => {
                let v = it.next().ok_or("--breakdown needs a value")?;
                cli.opts.breakdown = if v == "error" {
                    BreakdownPolicy::Error
                } else if v == "perturb" {
                    BreakdownPolicy::perturb_default()
                } else if let Some(eps) = v.strip_prefix("perturb:") {
                    let eps: f64 = eps
                        .parse()
                        .map_err(|_| format!("bad perturbation `{eps}`"))?;
                    if !(eps > 0.0 && eps.is_finite()) {
                        return Err(format!("perturbation must be positive, got {eps}"));
                    }
                    BreakdownPolicy::Perturb { eps }
                } else {
                    return Err(format!("unknown breakdown policy `{v}`"));
                };
            }
            "--kernels" => {
                let v = it.next().ok_or("--kernels needs a value")?;
                cli.opts.kernels = match v.as_str() {
                    "portable" => KernelChoice::Portable,
                    "simd" => KernelChoice::Simd,
                    "auto" => KernelChoice::Auto,
                    _ => return Err(format!("unknown kernel choice `{v}`")),
                };
            }
            "--time-limit" => {
                let v = it.next().ok_or("--time-limit needs a value (seconds)")?;
                let secs: f64 = v.parse().map_err(|_| format!("bad time limit `{v}`"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(format!("time limit must be positive, got {v}"));
                }
                cli.opts.budget.deadline = Some(Instant::now() + Duration::from_secs_f64(secs));
            }
            "--watchdog" => {
                let v = it.next().ok_or("--watchdog needs a value (milliseconds)")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad watchdog window `{v}`"))?;
                if ms == 0 {
                    return Err("watchdog window must be positive".to_string());
                }
                cli.opts.budget.watchdog = Some(WatchdogConfig::new(Duration::from_millis(ms)));
            }
            "--no-postorder" => cli.opts.postorder = false,
            "--no-amalgamation" => cli.opts.amalgamation = None,
            "--dynamic" => cli.opts.mapping = Mapping::Dynamic,
            "--equilibrate" => cli.opts.equilibrate = true,
            "--refine" => cli.refine = true,
            "--transpose" => cli.transpose = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(cli)
}

fn load(path: &str) -> Result<CscMatrix, String> {
    read_matrix_market(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))
}

fn matrix_name(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

/// Writes the artifacts `--report` / `--trace` requested, returning the
/// notes to append to the command output. Called on failure paths too, so
/// a structured error still leaves a report whose `status` records it.
fn write_observability(
    session: &ObsSession,
    cli: &Cli,
    matrix: MatrixMeta,
    status: RunStatus,
) -> Result<Vec<String>, String> {
    let mut notes = Vec::new();
    if let Some(p) = &cli.report {
        let report = session.report(matrix, &cli.opts, status);
        std::fs::write(p, report.to_json()).map_err(|e| format!("writing {p}: {e}"))?;
        notes.push(format!("wrote run report to {p}"));
    }
    if let Some(p) = &cli.trace {
        std::fs::write(p, session.chrome_json()).map_err(|e| format!("writing {p}: {e}"))?;
        notes.push(format!("wrote pipeline trace to {p}"));
    }
    Ok(notes)
}

fn cmd_analyze(
    path: &str,
    flags: &[String],
    token: Option<&CancelToken>,
) -> Result<String, CliError> {
    let cli = parse_flags(flags, token)?;
    let session = cli.session();
    let a = {
        let _p = session.as_ref().map(|o| o.phase("parse"));
        load(path)?
    };
    let ms = splu_sparse::stats::matrix_stats(&a);
    let sym = match &session {
        Some(o) => {
            let sreq = SymbolicRequest::from_options(&cli.opts).observe(o.clone());
            match analyze_with(a.pattern(), &cli.opts, &sreq) {
                Ok(sym) => sym,
                Err(e) => {
                    let meta = MatrixMeta {
                        name: matrix_name(path),
                        n: a.ncols(),
                        nnz: a.nnz(),
                    };
                    write_observability(o, &cli, meta, RunStatus::from_error(&e))?;
                    return Err(e.into());
                }
            }
        }
        None => analyze(a.pattern(), &cli.opts)?,
    };
    let s = &sym.stats;
    let mut out = String::new();
    let _ = writeln!(out, "matrix            : {path}");
    let _ = writeln!(out, "order             : {}", s.n);
    let _ = writeln!(out, "nnz(A)            : {}", s.nnz_a);
    let _ = writeln!(
        out,
        "structure         : bandwidth {}, symmetry {:.2} (values {:.2}), {} diagonal",
        ms.bandwidth,
        ms.structural_symmetry,
        ms.numerical_symmetry,
        if ms.zero_free_diagonal {
            "zero-free"
        } else {
            "deficient"
        }
    );
    let _ = writeln!(
        out,
        "nnz(Abar)         : {} ({:.2}x)",
        s.nnz_filled, s.fill_ratio
    );
    let _ = writeln!(
        out,
        "supernodes        : {} (exact {}, max width {})",
        s.supernodes, s.supernodes_exact, s.max_supernode_width
    );
    let _ = writeln!(out, "BTF blocks        : {}", s.btf_blocks);
    let _ = writeln!(
        out,
        "task graph        : {} tasks, {} edges, critical path {}",
        s.graph_tasks, s.graph_edges, s.critical_path
    );
    let _ = writeln!(out, "estimated flops   : {:.3e}", s.flops_estimate);
    if let Some(p) = &cli.dot_forest {
        std::fs::write(p, sym.block_forest.to_dot("eforest")).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote block eforest DOT to {p}");
    }
    if let Some(p) = &cli.dot_graph {
        let g = sym.build_graph(cli.opts.task_graph);
        std::fs::write(p, g.to_dot("tasks")).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote task graph DOT to {p}");
    }
    if let Some(o) = &session {
        let meta = MatrixMeta::from_stats(&matrix_name(path), &sym.stats);
        for note in write_observability(o, &cli, meta, RunStatus::success())? {
            let _ = writeln!(out, "{note}");
        }
    }
    Ok(out)
}

fn read_vector(path: &str, n: usize) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v: Vec<f64> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with('%'))
        .map(|l| {
            l.parse::<f64>()
                .map_err(|_| format!("bad value `{l}` in {path}"))
        })
        .collect::<Result<_, _>>()?;
    if v.len() != n {
        return Err(format!("{path}: expected {n} values, found {}", v.len()));
    }
    Ok(v)
}

fn cmd_solve(
    path: &str,
    flags: &[String],
    token: Option<&CancelToken>,
) -> Result<String, CliError> {
    let cli = parse_flags(flags, token)?;
    let session = cli.session();
    let a = {
        let _p = session.as_ref().map(|o| o.phase("parse"));
        load(path)?
    };
    let b = match &cli.rhs {
        Some(p) => read_vector(p, a.nrows())?,
        None => manufactured_rhs(&a, 1).1,
    };
    let t0 = std::time::Instant::now();
    let lu = match &session {
        Some(o) => match SparseLu::factor_observed(&a, &cli.opts, o) {
            Ok(lu) => lu,
            Err(e) => {
                let meta = MatrixMeta {
                    name: matrix_name(path),
                    n: a.ncols(),
                    nnz: a.nnz(),
                };
                write_observability(o, &cli, meta, RunStatus::from_error(&e))?;
                return Err(e.into());
            }
        },
        None => SparseLu::factor(&a, &cli.opts)?,
    };
    let t_factor = t0.elapsed();
    let t1 = std::time::Instant::now();
    let x = {
        let _p = session.as_ref().map(|o| o.phase("solve"));
        if cli.transpose {
            lu.try_solve_transposed(&b)?
        } else if cli.refine {
            lu.try_solve_refined(&a, &b, 1e-14, 2)?.0
        } else {
            lu.try_solve(&b)?
        }
    };
    let t_solve = t1.elapsed();
    let resid = if cli.transpose {
        relative_residual(&a.transpose(), &x, &b)
    } else {
        relative_residual(&a, &x, &b)
    };
    let st = lu.storage();
    let (dsign, dln) = lu.determinant();
    let mut out = String::new();
    let _ = writeln!(out, "factor time       : {t_factor:?}");
    let _ = writeln!(out, "solve time        : {t_solve:?}");
    let _ = writeln!(out, "scaled residual   : {resid:.3e}");
    let _ = writeln!(out, "growth factor     : {:.3e}", lu.growth(&a));
    let health = lu.health();
    if health.is_perturbed() {
        let _ = writeln!(
            out,
            "pivot perturbations: {} column(s), max {:.3e} (policy `perturb`; solves refine against the input)",
            health.perturbed_columns.len(),
            health.max_perturbation
        );
        if let Some(c) = health.condest {
            let _ = writeln!(out, "condest (perturbed): {c:.3e}");
        }
    }
    let _ = writeln!(
        out,
        "determinant       : {} exp({dln:.6})",
        if dsign > 0.0 { "+" } else { "-" }
    );
    if let Some(p) = &cli.out {
        let mut text = String::with_capacity(x.len() * 24);
        for v in &x {
            let _ = writeln!(text, "{v:.17e}");
        }
        std::fs::write(p, text).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote solution to {p}");
    }
    let _ = writeln!(
        out,
        "factor storage    : {} words ({:.1}% padding)",
        st.words,
        100.0 * st.padding_fraction
    );
    if let Some(o) = &session {
        let meta = MatrixMeta::from_stats(&matrix_name(path), lu.stats());
        for note in write_observability(o, &cli, meta, RunStatus::success())? {
            let _ = writeln!(out, "{note}");
        }
    }
    if resid > 1e-8 {
        let _ = writeln!(out, "WARNING: large residual — check conditioning");
    }
    Ok(out)
}

fn cmd_condest(
    path: &str,
    flags: &[String],
    token: Option<&CancelToken>,
) -> Result<String, CliError> {
    let cli = parse_flags(flags, token)?;
    let a = load(path)?;
    let lu = SparseLu::factor(&a, &cli.opts)?;
    let inv_norm = estimate_inverse_1norm(&lu, a.ncols(), 6);
    let cond = inv_norm * a.one_norm();
    Ok(format!(
        "||A||_1          : {:.6e}\n||A^-1||_1 (est) : {:.6e}\ncond_1 (est)     : {:.6e}\n",
        a.one_norm(),
        inv_norm,
        cond
    ))
}

fn cmd_gen(name: &str, out_path: &str, flags: &[String]) -> Result<String, CliError> {
    let scale = if flags.iter().any(|f| f == "--reduced") {
        Scale::Reduced
    } else {
        Scale::Full
    };
    let unknown: Vec<&String> = flags.iter().filter(|f| *f != "--reduced").collect();
    if !unknown.is_empty() {
        return Err(format!("unknown option `{}`", unknown[0]).into());
    }
    let a =
        paper_matrix(name, scale).ok_or_else(|| format!("unknown matrix `{name}` (see --help)"))?;
    write_matrix_market(&a, Path::new(out_path)).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} ({}x{}, {} nonzeros)\n",
        out_path,
        a.nrows(),
        a.ncols(),
        a.nnz()
    ))
}

/// One named session in serve mode: the persistent analyze/refactor state
/// plus the most recently factored values (retained for manufactured
/// right-hand sides, residual checks, and refined solves).
struct ServeEntry {
    session: splu_core::SluSession,
    matrix: Option<CscMatrix>,
}

type ServeSessions = std::sync::Mutex<std::collections::HashMap<String, Arc<Mutex<ServeEntry>>>>;

use std::io::{BufRead, Write as IoWrite};
use std::sync::{mpsc, Arc, Mutex};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Flattens a pretty-printed JSON document onto one line. Safe because the
/// writer escapes newlines inside string values, so every literal newline
/// and its indentation is inter-token whitespace.
fn compact_json(pretty: &str) -> String {
    pretty.lines().map(str::trim_start).collect()
}

/// Runs one serve-mode job line, returning the one-line JSON response.
fn serve_job(
    id: usize,
    line: &str,
    sessions: &ServeSessions,
    token: Option<&CancelToken>,
) -> String {
    let toks: Vec<String> = line.split_whitespace().map(String::from).collect();
    let op = toks[0].clone();
    let name = toks.get(1).cloned().unwrap_or_default();
    let head = format!(
        r#"{{"id":{id},"op":"{}","session":"{}""#,
        json_escape(&op),
        json_escape(&name)
    );
    let t0 = Instant::now();
    match serve_job_inner(&toks, sessions, token) {
        Ok(fields) => format!(
            r#"{head},"status":"ok","seconds":{:.6}{fields}}}"#,
            t0.elapsed().as_secs_f64()
        ),
        Err(e) => format!(
            r#"{head},"status":"error","exit_code":{},"error":"{}"}}"#,
            e.exit_code,
            json_escape(&e.message)
        ),
    }
}

/// The fallible body of [`serve_job`]: returns extra JSON fields (each
/// prefixed with a comma) to splice into the success response.
fn serve_job_inner(
    toks: &[String],
    sessions: &ServeSessions,
    token: Option<&CancelToken>,
) -> Result<String, CliError> {
    let op = toks[0].as_str();
    let name = toks
        .get(1)
        .ok_or_else(|| CliError::from(format!("`{op}` needs a session name")))?;
    let lookup = || -> Result<Arc<Mutex<ServeEntry>>, CliError> {
        sessions.lock().unwrap().get(name).cloned().ok_or_else(|| {
            CliError::from(format!("unknown session `{name}` (run `analyze` first)"))
        })
    };
    match op {
        "analyze" => {
            let path = toks
                .get(2)
                .ok_or_else(|| CliError::from("`analyze` needs a matrix path"))?;
            let cli = parse_flags(&toks[3..], token)?;
            let obs = ObsSession::new();
            let a = {
                let _p = obs.phase("parse");
                load(path)?
            };
            let meta = MatrixMeta {
                name: matrix_name(path),
                n: a.ncols(),
                nnz: a.nnz(),
            };
            let session = splu_core::SluSession::analyze_observed(a.pattern(), &cli.opts, &obs)
                .map_err(|e| {
                    let _ = obs.report(meta.clone(), &cli.opts, RunStatus::from_error(&e));
                    CliError::from(e)
                })?;
            let report = obs.report(
                MatrixMeta::from_stats(&matrix_name(path), session.stats()),
                &cli.opts,
                RunStatus::success(),
            );
            let stats = format!(
                r#","tasks":{},"supernodes":{}"#,
                session.stats().graph_tasks,
                session.stats().supernodes
            );
            sessions.lock().unwrap().insert(
                name.clone(),
                Arc::new(Mutex::new(ServeEntry {
                    session,
                    matrix: None,
                })),
            );
            Ok(format!(
                r#"{stats},"report":{}"#,
                compact_json(&report.to_json())
            ))
        }
        "factor" | "refactor" => {
            let path = toks
                .get(2)
                .ok_or_else(|| CliError::from(format!("`{op}` needs a values path")))?;
            let cli = parse_flags(&toks[3..], token)?;
            let entry = lookup()?;
            let mut e = entry.lock().unwrap();
            let obs = ObsSession::new();
            let a = {
                let _p = obs.phase("parse");
                load(path)?
            };
            e.session.set_budget(cli.opts.budget.clone());
            let outcome = if op == "refactor" {
                e.session.refactor_observed(&a, &obs)
            } else {
                e.session.factor_observed(&a, &obs)
            };
            let meta = MatrixMeta::from_stats(&matrix_name(path), e.session.stats());
            let opts = e.session.options().clone();
            match outcome {
                Ok(()) => {
                    e.matrix = Some(a);
                    let report = obs.report(meta, &opts, RunStatus::success());
                    Ok(format!(r#","report":{}"#, compact_json(&report.to_json())))
                }
                Err(err) => {
                    // The session survives a failed or interrupted
                    // factorization; the report records the error.
                    let _ = obs.report(meta, &opts, RunStatus::from_error(&err));
                    Err(err.into())
                }
            }
        }
        "solve" => {
            let cli = parse_flags(&toks[2..], token)?;
            let entry = lookup()?;
            let e = entry.lock().unwrap();
            let a = e.matrix.as_ref().ok_or_else(|| {
                CliError::from(format!("session `{name}` holds no factored values"))
            })?;
            let b = match &cli.rhs {
                Some(p) => read_vector(p, a.nrows())?,
                None => manufactured_rhs(a, 1).1,
            };
            let x = if cli.transpose {
                e.session.try_solve_transposed(&b)?
            } else if cli.refine {
                e.session.solve_refined(a, &b, 1e-14, 2)?.0
            } else {
                e.session.try_solve(&b)?
            };
            let resid = if cli.transpose {
                relative_residual(&a.transpose(), &x, &b)
            } else {
                relative_residual(a, &x, &b)
            };
            Ok(format!(r#","residual":{resid:.3e}"#))
        }
        other => Err(CliError::from(format!("unknown serve op `{other}`"))),
    }
}

/// The serve-mode engine, factored out of [`cmd_serve`] so the integration
/// tests can drive it in-process: reads line-delimited jobs from `reader`,
/// dispatches them over `workers` threads, and writes one JSON line per
/// job to `writer` in completion order. Returns the number of jobs run.
pub fn serve_loop<R: BufRead, W: IoWrite + Send>(
    reader: R,
    writer: &Mutex<W>,
    workers: usize,
    token: Option<&CancelToken>,
) -> Result<usize, CliError> {
    let sessions: ServeSessions = Mutex::new(std::collections::HashMap::new());
    let workers = workers.max(1);
    // One queue per worker, routed by session-name hash: jobs on the same
    // session keep their submission order (an `analyze g` always lands
    // before the `factor g` behind it), while different sessions spread
    // across workers and run concurrently.
    let mut txs = Vec::with_capacity(workers);
    let mut rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = mpsc::channel::<(usize, String)>();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut dispatched = 0usize;
    std::thread::scope(|scope| -> Result<(), CliError> {
        for rx in rxs {
            let sessions = &sessions;
            let writer = &writer;
            scope.spawn(move || {
                while let Ok((id, line)) = rx.recv() {
                    let response = serve_job(id, &line, sessions, token);
                    let mut w = writer.lock().unwrap();
                    let _ = writeln!(w, "{response}");
                    let _ = w.flush();
                }
            });
        }
        for line in reader.lines() {
            let line = line.map_err(|e| CliError::from(format!("reading jobs: {e}")))?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if trimmed == "quit" {
                break;
            }
            if token.is_some_and(|t| t.is_cancelled()) {
                break;
            }
            dispatched += 1;
            let session_name = trimmed.split_whitespace().nth(1).unwrap_or("");
            let lane = session_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
            }) as usize
                % workers;
            let _ = txs[lane].send((dispatched, trimmed.to_string()));
        }
        drop(txs);
        Ok(())
    })?;
    Ok(dispatched)
}

fn cmd_serve(flags: &[String], token: Option<&CancelToken>) -> Result<String, CliError> {
    let mut workers = 4usize;
    let mut it = flags.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::from("--workers needs a value"))?;
                workers = v
                    .parse()
                    .map_err(|_| CliError::from(format!("bad worker count `{v}`")))?;
                if workers == 0 {
                    return Err(CliError::from("worker count must be positive"));
                }
            }
            other => return Err(CliError::from(format!("unknown serve option `{other}`"))),
        }
    }
    let stdin = std::io::stdin();
    let stdout = Mutex::new(std::io::stdout());
    let n = serve_loop(stdin.lock(), &stdout, workers, token)?;
    Ok(format!("served {n} job(s)\n"))
}

/// Runs the CLI on the given arguments (without the program name), returning
/// the output text or a [`CliError`] carrying the message and the process
/// exit code.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_with_token(args, None)
}

/// Like [`run`], but wires an external [`CancelToken`] into the numeric
/// phase's run budget. The binary's Ctrl-C handler cancels this token, so
/// an interrupted factorization drains its workers and exits with the
/// structured code `130` instead of being killed mid-write.
pub fn run_with_token(args: &[String], token: Option<&CancelToken>) -> Result<String, CliError> {
    match args {
        [] => Err(CliError::from(USAGE)),
        [h] if h == "--help" || h == "-h" || h == "help" => Ok(USAGE.to_string()),
        [cmd, rest @ ..] => match (cmd.as_str(), rest) {
            ("analyze", [path, flags @ ..]) => cmd_analyze(path, flags, token),
            ("solve", [path, flags @ ..]) => cmd_solve(path, flags, token),
            ("condest", [path, flags @ ..]) => cmd_condest(path, flags, token),
            ("gen", [name, out, flags @ ..]) => cmd_gen(name, out, flags),
            ("serve", flags) => cmd_serve(flags, token),
            _ => Err(CliError::from(format!(
                "unknown or incomplete command `{cmd}`\n\n{USAGE}"
            ))),
        },
    }
}
