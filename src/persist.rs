//! Durable session journal for the serve daemon (DESIGN.md §6).
//!
//! The journal is a write-ahead log of *inputs*, not of serialized
//! factors. The pipeline is bitwise deterministic (the invariance suites
//! gate this), so replaying the acknowledged `analyze`/`factor`/
//! `refactor` job lines against a fresh engine reconstructs every
//! session exactly — same symbolic structure, same factor bits, same
//! `x_hash` — at the cost of one small framed append per mutating job
//! instead of gigabytes of factor storage.
//!
//! * **Framing** — each record is `[len: u32 LE][crc32: u32 LE][payload]`
//!   after a fixed text header identifying the file and format version.
//!   The CRC (IEEE 802.3, the zlib polynomial) covers the payload.
//! * **Durability** — [`Durability::Strict`] syncs the file before every
//!   append returns, so an acknowledged job is on disk before the client
//!   sees the ack; [`Durability::Relaxed`] batches syncs and accepts
//!   losing the un-synced tail to a crash.
//! * **Recovery** — [`read_journal`] accepts a torn tail (a crash mid
//!   append) by truncating to the last whole record, and stops at the
//!   first CRC mismatch. Neither is a crash: the daemon logs what it
//!   dropped and serves what survived. A file that does not start with
//!   the journal header is *never* truncated or overwritten — that is a
//!   configuration error, reported as such.
//! * **Compaction** — [`Journal::compact_with`] atomically replaces the
//!   log with a caller-gathered equivalent snapshot (per live session:
//!   the last `analyze` line, the last numeric line, and the applied job
//!   ids), keeping the file bounded by live-session state instead of
//!   job history.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The file header every journal starts with. The trailing version digit
/// is the format version; readers reject files with any other header
/// rather than guessing.
pub const JOURNAL_HEADER: &[u8] = b"parsplu-journal/1\n";

/// The journal file name inside `--state-dir`.
pub const JOURNAL_FILE: &str = "sessions.journal";

/// Upper bound on a single record's payload, as a corruption backstop: a
/// garbage length prefix must not allocate unbounded memory. Job lines
/// are already capped far below this by `--max-line-bytes`.
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// In relaxed mode, sync after this many un-synced appends.
const RELAXED_SYNC_EVERY: u32 = 32;

/// When an acknowledged append reaches disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// `fsync` before every append returns: an acknowledged mutating job
    /// survives `SIGKILL`.
    #[default]
    Strict,
    /// Batched syncs (every [`RELAXED_SYNC_EVERY`] appends and on
    /// drain): faster, but a crash can lose the un-synced tail of
    /// acknowledged work.
    Relaxed,
}

impl Durability {
    /// Parses a `--durability` argument.
    pub fn parse(s: &str) -> Result<Durability, String> {
        match s {
            "strict" => Ok(Durability::Strict),
            "relaxed" => Ok(Durability::Relaxed),
            other => Err(format!(
                "unknown durability `{other}` (expected `strict` or `relaxed`)"
            )),
        }
    }

    /// The stable name (`strict` / `relaxed`).
    pub fn name(self) -> &'static str {
        match self {
            Durability::Strict => "strict",
            Durability::Relaxed => "relaxed",
        }
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — no external dependency.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 of `bytes` (IEEE polynomial, the zlib/`cksum -o 3` variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// An acknowledged mutating job line, replayed verbatim through the
    /// serve engine on recovery. `job_id` mirrors the line's inline
    /// `--job-id` token when the client supplied one (the line itself is
    /// authoritative; the field makes the log greppable).
    Job {
        /// The client-supplied idempotency token, if any.
        job_id: Option<String>,
        /// The job line exactly as submitted (trimmed, newline-free).
        line: String,
    },
    /// The applied job-id set retained for one session at compaction
    /// time, so a retry of a pre-compaction job is still recognized as a
    /// duplicate after a crash instead of being re-applied.
    AppliedIds {
        /// Session name (a whitespace-free token by protocol).
        session: String,
        /// Applied ids, oldest first (whitespace-free tokens).
        ids: Vec<String>,
    },
    /// A compaction boundary marker (diagnostic only).
    Compacted {
        /// Live sessions snapshotted by the compaction.
        live_sessions: u64,
    },
}

/// Encodes a record payload (the bytes the CRC covers).
///
/// The encoding is line-free text: a one-byte tag, then space-separated
/// tokens, with the job line as the untokenized remainder (it may contain
/// spaces — and, because records are length-framed, any byte at all).
pub fn encode_record(rec: &Record) -> Vec<u8> {
    match rec {
        Record::Job { job_id, line } => {
            let id = job_id.as_deref().unwrap_or("-");
            format!("J {id} {line}").into_bytes()
        }
        Record::AppliedIds { session, ids } => {
            let mut out = format!("I {session}");
            for id in ids {
                out.push(' ');
                out.push_str(id);
            }
            out.into_bytes()
        }
        Record::Compacted { live_sessions } => format!("C {live_sessions}").into_bytes(),
    }
}

/// Decodes a record payload written by [`encode_record`].
pub fn decode_record(payload: &[u8]) -> Result<Record, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("non-UTF-8 payload: {e}"))?;
    let (tag, rest) = text
        .split_once(' ')
        .ok_or_else(|| format!("record too short: {text:?}"))?;
    match tag {
        "J" => {
            let (id, line) = rest
                .split_once(' ')
                .ok_or_else(|| format!("job record without a line: {text:?}"))?;
            let job_id = if id == "-" {
                None
            } else {
                Some(id.to_string())
            };
            Ok(Record::Job {
                job_id,
                line: line.to_string(),
            })
        }
        "I" => {
            let mut tokens = rest.split(' ');
            let session = tokens
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| format!("applied-ids record without a session: {text:?}"))?;
            Ok(Record::AppliedIds {
                session: session.to_string(),
                ids: tokens.filter(|t| !t.is_empty()).map(String::from).collect(),
            })
        }
        "C" => Ok(Record::Compacted {
            live_sessions: rest
                .trim()
                .parse()
                .map_err(|_| format!("bad compaction marker: {text:?}"))?,
        }),
        other => Err(format!("unknown record tag {other:?}")),
    }
}

/// Frames a record for the file: `[len][crc][payload]`.
pub fn frame_record(rec: &Record) -> Vec<u8> {
    let payload = encode_record(rec);
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------------
// Reading / recovery
// ---------------------------------------------------------------------------

/// Why a journal read stopped before the end of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Damage {
    /// The file ended inside a record: a crash mid append. Normal for
    /// strict recovery; the torn bytes are truncated away.
    TornTail {
        /// Bytes past the last whole record.
        dropped_bytes: u64,
    },
    /// A record's CRC (or an impossible length prefix) did not match:
    /// on-disk corruption. Reading stops at the damaged record.
    Corrupt {
        /// File offset of the damaged record's frame.
        offset: u64,
        /// Bytes dropped (the damaged record and everything after it).
        dropped_bytes: u64,
    },
}

/// What a journal read recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// Whole, CRC-verified records in file order.
    pub records: Vec<Record>,
    /// Length of the valid prefix (header + whole records); the file is
    /// truncated to this before new appends.
    pub valid_bytes: u64,
    /// Damage found past the valid prefix, if any.
    pub damage: Option<Damage>,
}

/// Reads and verifies a journal file. Missing file ⇒ empty recovery; a
/// torn tail or CRC mismatch drops the damaged suffix (recorded in
/// `damage`) and keeps everything before it; a file with the wrong
/// header is an error — it is not a journal, and is left untouched.
pub fn read_journal(path: &Path) -> Result<Recovered, String> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Recovered {
                records: Vec::new(),
                valid_bytes: 0,
                damage: None,
            })
        }
        Err(e) => return Err(format!("opening {}: {e}", path.display())),
    };
    let mut data = Vec::new();
    file.read_to_end(&mut data)
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    if data.len() < JOURNAL_HEADER.len() || &data[..JOURNAL_HEADER.len()] != JOURNAL_HEADER {
        return Err(format!(
            "{} does not start with the journal header {:?}; refusing to treat it as a journal",
            path.display(),
            String::from_utf8_lossy(JOURNAL_HEADER).trim_end()
        ));
    }
    let mut records = Vec::new();
    let mut pos = JOURNAL_HEADER.len();
    let mut damage = None;
    while pos < data.len() {
        let remaining = data.len() - pos;
        if remaining < 8 {
            damage = Some(Damage::TornTail {
                dropped_bytes: remaining as u64,
            });
            break;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            damage = Some(Damage::Corrupt {
                offset: pos as u64,
                dropped_bytes: remaining as u64,
            });
            break;
        }
        if remaining - 8 < len as usize {
            damage = Some(Damage::TornTail {
                dropped_bytes: remaining as u64,
            });
            break;
        }
        let payload = &data[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            damage = Some(Damage::Corrupt {
                offset: pos as u64,
                dropped_bytes: remaining as u64,
            });
            break;
        }
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => {
                // A CRC-valid but undecodable record means a format from
                // the future or a logic bug; stop here rather than guess.
                damage = Some(Damage::Corrupt {
                    offset: pos as u64,
                    dropped_bytes: remaining as u64,
                });
                break;
            }
        }
        pos += 8 + len as usize;
    }
    Ok(Recovered {
        records,
        valid_bytes: pos as u64,
        damage,
    })
}

// ---------------------------------------------------------------------------
// The append/compact writer
// ---------------------------------------------------------------------------

struct Writer {
    file: File,
    unsynced: u32,
}

impl Writer {
    fn sync(&mut self) -> std::io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

/// An open journal: serialized appends with configurable durability,
/// plus atomic compaction. Shared across worker threads behind its own
/// internal lock.
pub struct Journal {
    inner: Mutex<Writer>,
    path: PathBuf,
    durability: Durability,
    bytes: AtomicU64,
    /// Journal size right after the last compaction (or open), the
    /// baseline the growth-triggered compaction policy compares against.
    compact_baseline: AtomicU64,
}

impl Journal {
    /// Opens (or creates) the journal under `state_dir`, recovering the
    /// valid prefix: a torn tail is truncated away (and reported in the
    /// returned [`Recovered::damage`]), a wrong header is an error.
    pub fn open(state_dir: &Path, durability: Durability) -> Result<(Journal, Recovered), String> {
        std::fs::create_dir_all(state_dir)
            .map_err(|e| format!("creating {}: {e}", state_dir.display()))?;
        let path = state_dir.join(JOURNAL_FILE);
        let recovered = read_journal(&path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        let valid = if recovered.valid_bytes == 0 {
            file.set_len(0)
                .and_then(|_| file.write_all(JOURNAL_HEADER))
                .and_then(|_| file.sync_data())
                .map_err(|e| format!("initializing {}: {e}", path.display()))?;
            JOURNAL_HEADER.len() as u64
        } else {
            // Drop the torn/corrupt suffix so new appends start at a
            // record boundary.
            file.set_len(recovered.valid_bytes)
                .map_err(|e| format!("truncating {}: {e}", path.display()))?;
            recovered.valid_bytes
        };
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("seeking {}: {e}", path.display()))?;
        Ok((
            Journal {
                inner: Mutex::new(Writer { file, unsynced: 0 }),
                path,
                durability,
                bytes: AtomicU64::new(valid),
                compact_baseline: AtomicU64::new(valid),
            },
            recovered,
        ))
    }

    /// The journal's durability mode.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Current file size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// File size right after the last compaction (or open).
    pub fn compact_baseline(&self) -> u64 {
        self.compact_baseline.load(Ordering::Relaxed)
    }

    /// Appends one record. Strict durability syncs before returning —
    /// when this returns `Ok`, the record survives `SIGKILL`.
    pub fn append(&self, rec: &Record) -> std::io::Result<()> {
        let frame = frame_record(rec);
        let mut w = self.inner.lock().unwrap();
        w.file.write_all(&frame)?;
        w.file.flush()?;
        w.unsynced += 1;
        match self.durability {
            Durability::Strict => w.sync()?,
            Durability::Relaxed => {
                if w.unsynced >= RELAXED_SYNC_EVERY {
                    w.sync()?;
                }
            }
        }
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Forces any batched writes to disk (drain/shutdown path for
    /// relaxed durability).
    pub fn sync(&self) -> std::io::Result<()> {
        self.inner.lock().unwrap().sync()
    }

    /// Atomically replaces the journal with `gather()`'s snapshot: tmp
    /// file, sync, rename. The writer lock is held across the gather so
    /// no concurrent append can land in the old file after the snapshot
    /// was taken (it would be silently dropped by the rename). `gather`
    /// returning `None` aborts the compaction (e.g. a session is busy);
    /// returns whether a compaction happened.
    pub fn compact_with(
        &self,
        gather: impl FnOnce() -> Option<Vec<Record>>,
    ) -> std::io::Result<bool> {
        let mut w = self.inner.lock().unwrap();
        let Some(records) = gather() else {
            return Ok(false);
        };
        let tmp = self.path.with_extension("tmp");
        let mut out = File::create(&tmp)?;
        out.write_all(JOURNAL_HEADER)?;
        let mut total = JOURNAL_HEADER.len() as u64;
        for rec in &records {
            let frame = frame_record(rec);
            out.write_all(&frame)?;
            total += frame.len() as u64;
        }
        out.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        // Best-effort directory sync so the rename itself is durable.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_data();
            }
        }
        // The held handle still points at the old inode; swap in the new
        // file positioned at its end.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        *w = Writer { file, unsynced: 0 };
        self.bytes.store(total, Ordering::Relaxed);
        self.compact_baseline.store(total, Ordering::Relaxed);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "parsplu_persist_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Job {
                job_id: None,
                line: "analyze g /tmp/m.mtx --threads 2".into(),
            },
            Record::Job {
                job_id: Some("c1-7".into()),
                line: "factor g /tmp/m.mtx --job-id c1-7".into(),
            },
            Record::AppliedIds {
                session: "g".into(),
                ids: vec!["c1-7".into(), "c1-8".into()],
            },
            Record::Compacted { live_sessions: 1 },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_encode_decode() {
        for rec in sample_records() {
            let payload = encode_record(&rec);
            assert_eq!(decode_record(&payload).unwrap(), rec);
        }
        // Ids with no whitespace survive; a lone "-" is the None marker.
        let rec = Record::Job {
            job_id: None,
            line: "line with  double  spaces and --flags".into(),
        };
        assert_eq!(decode_record(&encode_record(&rec)).unwrap(), rec);
        assert!(decode_record(b"X something").is_err());
        assert!(decode_record(b"J").is_err());
    }

    #[test]
    fn journal_appends_and_recovers() {
        let dir = tmpdir("basic");
        let (j, rec0) = Journal::open(&dir, Durability::Strict).unwrap();
        assert!(rec0.records.is_empty());
        assert!(rec0.damage.is_none());
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        assert!(j.bytes() > JOURNAL_HEADER.len() as u64);
        drop(j);
        let (j2, rec1) = Journal::open(&dir, Durability::Relaxed).unwrap();
        assert_eq!(rec1.records, sample_records());
        assert!(rec1.damage.is_none());
        drop(j2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmpdir("torn");
        let (j, _) = Journal::open(&dir, Durability::Strict).unwrap();
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        let whole = j.bytes();
        drop(j);
        let path = dir.join(JOURNAL_FILE);
        // Simulate a crash mid-append: a partial frame at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x21, 0x00, 0x00, 0x00, 0xde, 0xad]).unwrap();
        drop(f);
        let (j2, rec) = Journal::open(&dir, Durability::Strict).unwrap();
        assert_eq!(rec.records, sample_records());
        assert_eq!(rec.damage, Some(Damage::TornTail { dropped_bytes: 6 }));
        assert_eq!(rec.valid_bytes, whole);
        // The torn bytes are gone; appending continues cleanly.
        j2.append(&Record::Compacted { live_sessions: 9 }).unwrap();
        drop(j2);
        let rec = read_journal(&path).unwrap();
        assert_eq!(rec.records.len(), sample_records().len() + 1);
        assert!(rec.damage.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_corruption_stops_the_read_at_the_damaged_record() {
        let dir = tmpdir("crc");
        let (j, _) = Journal::open(&dir, Durability::Strict).unwrap();
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        drop(j);
        let path = dir.join(JOURNAL_FILE);
        // Flip one payload byte in the second record.
        let mut data = std::fs::read(&path).unwrap();
        let first_len =
            u32::from_le_bytes(frame_record(&sample_records()[0])[..4].try_into().unwrap());
        let second_payload_at = JOURNAL_HEADER.len() + 8 + first_len as usize + 8 + 2;
        data[second_payload_at] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        let rec = read_journal(&path).unwrap();
        assert_eq!(rec.records, sample_records()[..1].to_vec());
        assert!(matches!(rec.damage, Some(Damage::Corrupt { .. })));
        // Open truncates the damaged suffix and keeps serving.
        let (j2, _) = Journal::open(&dir, Durability::Strict).unwrap();
        assert_eq!(
            j2.bytes(),
            (JOURNAL_HEADER.len() + 8 + first_len as usize) as u64
        );
        drop(j2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_files_are_refused_not_clobbered() {
        let dir = tmpdir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_FILE);
        std::fs::write(&path, b"important user data, definitely not a journal").unwrap();
        assert!(Journal::open(&dir, Durability::Strict).is_err());
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"important user data, definitely not a journal"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_replaces_the_log_atomically() {
        let dir = tmpdir("compact");
        let (j, _) = Journal::open(&dir, Durability::Strict).unwrap();
        for _ in 0..50 {
            for r in sample_records() {
                j.append(&r).unwrap();
            }
        }
        let before = j.bytes();
        let snapshot = vec![
            Record::Job {
                job_id: None,
                line: "analyze g /tmp/m.mtx".into(),
            },
            Record::Compacted { live_sessions: 1 },
        ];
        let snap = snapshot.clone();
        assert!(j.compact_with(move || Some(snap)).unwrap());
        assert!(j.bytes() < before);
        assert_eq!(j.compact_baseline(), j.bytes());
        // An aborted gather leaves the journal untouched.
        let kept = j.bytes();
        assert!(!j.compact_with(|| None).unwrap());
        assert_eq!(j.bytes(), kept);
        // Appends after compaction land in the new file.
        j.append(&Record::Compacted { live_sessions: 2 }).unwrap();
        drop(j);
        let rec = read_journal(&dir.join(JOURNAL_FILE)).unwrap();
        let mut expect = snapshot;
        expect.push(Record::Compacted { live_sessions: 2 });
        assert_eq!(rec.records, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
